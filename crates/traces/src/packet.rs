//! The packet model shared by all crates.

use crate::hash;

/// A network packet as recorded by the measurement datapath.
///
/// This mirrors what the paper's OVS integration copies into shared
/// memory per packet: the flow identity (they key on the source IP), a
/// per-packet identifier, and the IP total length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Packet {
    /// IPv4 source address.
    pub src_ip: u32,
    /// IPv4 destination address.
    pub dst_ip: u32,
    /// Transport source port.
    pub src_port: u16,
    /// Transport destination port.
    pub dst_port: u16,
    /// IP protocol number (6 = TCP, 17 = UDP).
    pub proto: u8,
    /// IP total length in bytes.
    pub len: u16,
    /// Arrival timestamp in nanoseconds.
    pub ts_ns: u64,
    /// Per-packet sequence number, unique within a trace. Together with
    /// the flow key it forms the packet identifier that network-wide
    /// algorithms hash.
    pub seq: u64,
}

impl Packet {
    /// The 5-tuple flow key of this packet.
    pub fn flow(&self) -> FlowKey {
        FlowKey {
            src_ip: self.src_ip,
            dst_ip: self.dst_ip,
            src_port: self.src_port,
            dst_port: self.dst_port,
            proto: self.proto,
        }
    }

    /// A 64-bit packet identifier unique within the trace, mixing the
    /// flow key with the sequence number (this is what the
    /// routing-oblivious network-wide algorithms hash, so that every
    /// observation point computes the same value for the same packet).
    pub fn packet_id(&self) -> u64 {
        hash::mix64(self.flow().as_u64() ^ self.seq.rotate_left(17))
    }
}

/// A transport 5-tuple identifying a flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowKey {
    /// IPv4 source address.
    pub src_ip: u32,
    /// IPv4 destination address.
    pub dst_ip: u32,
    /// Transport source port.
    pub src_port: u16,
    /// Transport destination port.
    pub dst_port: u16,
    /// IP protocol number.
    pub proto: u8,
}

impl FlowKey {
    /// Folds the 5-tuple into a single well-mixed 64-bit word.
    pub fn as_u64(&self) -> u64 {
        let a = ((self.src_ip as u64) << 32) | self.dst_ip as u64;
        let b = ((self.src_port as u64) << 48) | ((self.dst_port as u64) << 32) | self.proto as u64;
        hash::mix64(a ^ hash::mix64(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(seq: u64) -> Packet {
        Packet {
            src_ip: 0x0a000001,
            dst_ip: 0xc0a80101,
            src_port: 443,
            dst_port: 51234,
            proto: 6,
            len: 1500,
            ts_ns: seq * 100,
            seq,
        }
    }

    #[test]
    fn packet_ids_are_distinct_per_seq() {
        let a = pkt(1).packet_id();
        let b = pkt(2).packet_id();
        assert_ne!(a, b);
        // Deterministic: same packet, same id.
        assert_eq!(a, pkt(1).packet_id());
    }

    #[test]
    fn flow_key_ignores_len_and_ts() {
        let mut p = pkt(5);
        let f1 = p.flow();
        p.len = 64;
        p.ts_ns = 999;
        assert_eq!(f1, p.flow());
    }

    #[test]
    fn flow_key_u64_differs_across_flows() {
        let mut p = pkt(0);
        let a = p.flow().as_u64();
        p.src_port = 80;
        let b = p.flow().as_u64();
        assert_ne!(a, b);
    }

    #[test]
    fn packet_ids_are_routing_oblivious() {
        // Two observation points computing the id of the same packet
        // (same bytes) must agree — the property the network-wide
        // algorithms depend on.
        let a = pkt(123);
        let b = pkt(123);
        assert_eq!(a.packet_id(), b.packet_id());
        // Ids mix the flow key too: same seq on a different flow differs.
        let mut c = pkt(123);
        c.dst_port = 1;
        assert_ne!(a.packet_id(), c.packet_id());
    }

    #[test]
    fn packet_id_collisions_are_rare() {
        // 100k packets over few flows: ids must be (near-)unique.
        let mut seen = std::collections::HashSet::new();
        for seq in 0..100_000u64 {
            let mut p = pkt(seq);
            p.src_port = (seq % 7) as u16;
            assert!(seen.insert(p.packet_id()), "collision at seq {seq}");
        }
    }
}
