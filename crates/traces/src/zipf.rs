//! Zipfian sampling via the alias method.
//!
//! Flow popularity in internet traces is classically modelled as
//! Zipf-distributed: the rank-`r` flow receives a share proportional to
//! `r^(-α)`. For trace generation we need millions of samples over up to
//! millions of flows, so we precompute Walker's alias table once
//! (`O(n)`) and sample in `O(1)`.

use crate::rng::SplitMix64;

/// An `O(1)` sampler for an arbitrary finite discrete distribution
/// (Walker's alias method), specialised here for Zipf popularity.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    /// Acceptance probability of each bucket (scaled to `u64`).
    prob: Vec<u64>,
    /// Alias bucket used on rejection.
    alias: Vec<u32>,
    rng: SplitMix64,
}

impl ZipfSampler {
    /// Builds a Zipf(α) sampler over ranks `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `n > u32::MAX as usize`, or if `alpha` is
    /// negative or not finite.
    pub fn new(n: usize, alpha: f64, seed: u64) -> Self {
        assert!(n > 0, "support must be non-empty");
        assert!(n <= u32::MAX as usize, "support too large");
        assert!(
            alpha >= 0.0 && alpha.is_finite(),
            "alpha must be finite and non-negative"
        );
        let weights: Vec<f64> = (0..n).map(|r| ((r + 1) as f64).powf(-alpha)).collect();
        Self::from_weights(&weights, seed)
    }

    /// Builds an alias sampler from arbitrary non-negative weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, contains a negative or non-finite
    /// value, or sums to zero.
    pub fn from_weights(weights: &[f64], seed: u64) -> Self {
        assert!(!weights.is_empty(), "weights must be non-empty");
        let n = weights.len();
        let sum: f64 = weights.iter().sum();
        assert!(
            weights.iter().all(|w| *w >= 0.0 && w.is_finite()) && sum > 0.0,
            "weights must be non-negative, finite, and not all zero"
        );
        // Scale so the average bucket weight is 1.
        let scaled: Vec<f64> = weights.iter().map(|w| w * n as f64 / sum).collect();
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        let mut rem = scaled.clone();
        for (i, &w) in scaled.iter().enumerate() {
            if w < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        let mut prob = vec![u64::MAX; n];
        let mut alias = vec![0u32; n];
        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            prob[s as usize] = (rem[s as usize] * (u64::MAX as f64)) as u64;
            alias[s as usize] = l;
            rem[l as usize] -= 1.0 - rem[s as usize];
            if rem[l as usize] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Leftovers (numerical residue) accept with probability 1.
        for i in small.into_iter().chain(large) {
            prob[i as usize] = u64::MAX;
            alias[i as usize] = i;
        }
        ZipfSampler {
            prob,
            alias,
            rng: SplitMix64::new(seed),
        }
    }

    /// Support size.
    pub fn support(&self) -> usize {
        self.prob.len()
    }

    /// Draws one rank in `O(1)`.
    #[inline]
    pub fn sample(&mut self) -> u32 {
        let n = self.prob.len() as u64;
        let r = self.rng.next_u64();
        // Split one draw: low bits pick the bucket, a second draw decides
        // accept-vs-alias (one extra draw keeps the two independent).
        let bucket = ((r as u128 * n as u128) >> 64) as usize;
        if self.rng.next_u64() <= self.prob[bucket] {
            bucket as u32
        } else {
            self.alias[bucket]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_weights_sample_uniformly() {
        let mut s = ZipfSampler::new(10, 0.0, 42);
        let mut counts = [0u32; 10];
        let n = 200_000;
        for _ in 0..n {
            counts[s.sample() as usize] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let expect = n as f64 / 10.0;
            assert!(
                (c as f64 - expect).abs() < expect * 0.05,
                "rank {i}: {c} vs {expect}"
            );
        }
    }

    #[test]
    fn zipf_is_head_heavy() {
        let mut s = ZipfSampler::new(1000, 1.0, 7);
        let mut counts = vec![0u32; 1000];
        let n = 300_000;
        for _ in 0..n {
            counts[s.sample() as usize] += 1;
        }
        // Rank 0 should get roughly 1/H_1000 ≈ 13.4% of the mass.
        let share0 = counts[0] as f64 / n as f64;
        assert!((share0 - 0.134).abs() < 0.02, "head share {share0}");
        // Monotone decreasing in expectation: compare decile sums.
        let head: u32 = counts[..100].iter().sum();
        let tail: u32 = counts[900..].iter().sum();
        assert!(
            head > 10 * tail,
            "head {head} not dominant over tail {tail}"
        );
    }

    #[test]
    fn explicit_weights_respected() {
        let mut s = ZipfSampler::from_weights(&[1.0, 0.0, 3.0], 9);
        let mut counts = [0u32; 3];
        for _ in 0..100_000 {
            counts[s.sample() as usize] += 1;
        }
        assert_eq!(counts[1], 0, "zero-weight bucket sampled");
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.2, "ratio {ratio}");
    }

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = ZipfSampler::new(50, 1.2, 5);
        let mut b = ZipfSampler::new(50, 1.2, 5);
        for _ in 0..1000 {
            assert_eq!(a.sample(), b.sample());
        }
    }

    #[test]
    #[should_panic(expected = "support must be non-empty")]
    fn empty_support_panics() {
        let _ = ZipfSampler::new(0, 1.0, 1);
    }

    #[test]
    #[should_panic(expected = "alpha must be finite")]
    fn negative_alpha_panics() {
        let _ = ZipfSampler::new(10, -1.0, 1);
    }

    #[test]
    #[should_panic(expected = "non-negative, finite")]
    fn all_zero_weights_panic() {
        let _ = ZipfSampler::from_weights(&[0.0, 0.0], 1);
    }

    #[test]
    #[should_panic(expected = "non-negative, finite")]
    fn nan_weight_panics() {
        let _ = ZipfSampler::from_weights(&[1.0, f64::NAN], 1);
    }

    #[test]
    fn single_bucket_always_sampled() {
        let mut s = ZipfSampler::from_weights(&[42.0], 3);
        for _ in 0..100 {
            assert_eq!(s.sample(), 0);
        }
        assert_eq!(s.support(), 1);
    }
}
