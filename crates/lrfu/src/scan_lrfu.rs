//! Exact LRFU with linear-scan eviction (`O(q)` per miss).

use crate::score::DecayScore;
use crate::Cache;
use std::collections::HashMap;
use std::hash::Hash;

/// LRFU with a flat entry array: hits bump scores in `O(1)` via a key
/// map, misses evict by scanning all `q` entries for the minimum.
///
/// This mirrors the paper's observation (Figure 9) that a heap without
/// sift operations leaves LRFU with `O(q)`-time maintenance; it is the
/// baseline that makes large LRFU caches impractical.
#[derive(Debug, Clone)]
pub struct ScanLrfu<K> {
    q: usize,
    score: DecayScore,
    /// Cached entries (key, log-score).
    entries: Vec<(K, f64)>,
    /// Key → index in `entries`.
    pos: HashMap<K, usize>,
    time: u64,
}

impl<K: Clone + Hash + Eq> ScanLrfu<K> {
    /// Creates an LRFU cache of `q` entries with decay parameter `c`.
    ///
    /// # Panics
    ///
    /// Panics if `q == 0` or `c` outside `(0, 1)`.
    pub fn new(q: usize, c: f64) -> Self {
        assert!(q > 0, "q must be positive");
        ScanLrfu {
            q,
            score: DecayScore::new(c),
            entries: Vec::with_capacity(q),
            pos: HashMap::new(),
            time: 0,
        }
    }
}

impl<K: Clone + Hash + Eq> Cache<K> for ScanLrfu<K> {
    fn request(&mut self, key: K) -> bool {
        self.time += 1;
        let t = self.time;
        if let Some(&i) = self.pos.get(&key) {
            self.entries[i].1 = self.score.bump(self.entries[i].1, t);
            return true;
        }
        if self.entries.len() == self.q {
            // O(q) scan for the minimum score.
            let (victim, _) = self
                .entries
                .iter()
                .enumerate()
                .min_by(|a, b| a.1 .1.total_cmp(&b.1 .1))
                .expect("cache is full");
            let (old_key, _) = self.entries.swap_remove(victim);
            self.pos.remove(&old_key);
            if victim < self.entries.len() {
                let moved = self.entries[victim].0.clone();
                self.pos.insert(moved, victim);
            }
        }
        self.entries.push((key.clone(), self.score.access(t)));
        self.pos.insert(key, self.entries.len() - 1);
        false
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn capacity_bounds(&self) -> (usize, usize) {
        (self.q, self.q)
    }

    fn reset(&mut self) {
        self.entries.clear();
        self.pos.clear();
        self.time = 0;
    }

    fn name(&self) -> &'static str {
        "lrfu-scan"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_hit_miss() {
        let mut c = ScanLrfu::new(2, 0.75);
        assert!(!c.request(1u64));
        assert!(c.request(1u64));
        assert!(!c.request(2u64));
        assert!(!c.request(3u64)); // evicts one of {1, 2}
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn position_map_survives_swap_remove() {
        let mut c = ScanLrfu::new(3, 0.6);
        for k in 0..100u64 {
            c.request(k % 7);
        }
        // Every cached key must be findable (hit) right away.
        let cached: Vec<u64> = c.entries.iter().map(|(k, _)| *k).collect();
        for k in cached {
            assert!(c.request(k), "cached key {k} missed");
        }
    }
}
