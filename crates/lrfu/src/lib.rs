//! LRFU cache policies (Lee et al., IEEE ToC 2001) and the q-MAX paper's
//! constant-time LRFU (Section 5.1).
//!
//! LRFU scores each cached item by `Σ c^(t−i)` over its access times
//! `i` — a spectrum between LRU (`c → 0` keeps only recency) and LFU
//! (`c = 1` keeps only frequency) — and evicts the minimum-score item.
//! Classical implementations pay `O(log q)` (indexed heap) or `O(q)`
//! (scan / rebuild) per request; the paper's exponential-decay q-MAX
//! construction brings this to amortized `O(1)` at the cost of letting
//! the cache population float between `q` and `q(1+γ)`.
//!
//! Scores are maintained in the numerically safe log domain: an access
//! at time `t` contributes `exp(λt)` (`λ = −ln c`), aggregated with
//! log-sum-exp, and the decayed score at time `T` is the monotone
//! transform `exp(w − λT)` — so ordering by the stored `w` is ordering
//! by score, with no overflow for streams of any practical length.
//!
//! * [`HeapLrfu`] — exact LRFU on an indexed min-heap, `O(log q)`.
//! * [`ScanLrfu`] — exact LRFU with `O(q)` scan eviction, the
//!   no-sift-heap behaviour the paper benchmarks against (Figure 9).
//! * [`QMaxLrfu`] — the paper's q-MAX based LRFU: amortized `O(1)` per
//!   request, population in `[q, q(1+γ)]`, guaranteeing the `q`
//!   highest-score items are never evicted.
//! * [`Cache`] / [`hit_ratio`] — the shared policy interface and
//!   evaluation harness (Table 2).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod deamortized;
mod heap_lrfu;
mod qmax_lrfu;
mod scan_lrfu;
mod score;

pub use deamortized::{DeamortizedLrfu, DeamortizedLrfuStats, SoaDeamortizedLrfu};
pub use heap_lrfu::HeapLrfu;
pub use qmax_lrfu::{AdaptiveQMaxLrfu, QMaxLrfu, SoaQMaxLrfu};
pub use scan_lrfu::ScanLrfu;
pub use score::{fast_logaddexp, logaddexp, DecayScore, FAST_LOGADDEXP_ABS_ERR};

/// The cache-policy interface shared by all LRFU implementations.
pub trait Cache<K> {
    /// Processes a request for `key`; returns `true` on a cache hit.
    fn request(&mut self, key: K) -> bool;

    /// Number of items currently cached.
    fn len(&self) -> usize;

    /// Whether the cache is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Minimum and maximum number of items the cache may hold once warm
    /// (`(q, q)` for exact policies, `(q, ⌈q(1+γ)⌉)` for q-MAX LRFU).
    fn capacity_bounds(&self) -> (usize, usize);

    /// Empties the cache and restarts time.
    fn reset(&mut self);

    /// Implementation name for benchmark labels.
    fn name(&self) -> &'static str;
}

/// Replays `trace` through `cache` and returns the hit ratio.
pub fn hit_ratio<K: Copy, C: Cache<K>>(cache: &mut C, trace: &[K]) -> f64 {
    if trace.is_empty() {
        return 0.0;
    }
    let mut hits = 0u64;
    for &key in trace {
        if cache.request(key) {
            hits += 1;
        }
    }
    hits as f64 / trace.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use qmax_traces::gen::arc_like;

    #[test]
    fn hit_ratio_ordering_matches_paper_table2() {
        // Paper Table 2: LRFU(q) <= q-MAX LRFU(q, gamma) <= LRFU(q(1+gamma)),
        // up to noise. Check the ordering with a healthy margin.
        let trace = arc_like(200_000, 20_000, 42);
        let q = 2_000;
        let c = 0.75;
        for gamma in [0.5, 1.0] {
            let small = hit_ratio(&mut HeapLrfu::new(q, c), &trace);
            let qmax = hit_ratio(&mut QMaxLrfu::new(q, gamma, c), &trace);
            let big_q = ((q as f64) * (1.0 + gamma)).ceil() as usize;
            let large = hit_ratio(&mut HeapLrfu::new(big_q, c), &trace);
            assert!(
                qmax >= small - 0.01,
                "gamma={gamma}: qmax {qmax} below q-sized LRFU {small}"
            );
            assert!(
                qmax <= large + 0.01,
                "gamma={gamma}: qmax {qmax} above q(1+gamma)-sized LRFU {large}"
            );
        }
    }

    #[test]
    fn exact_policies_agree() {
        let trace = arc_like(50_000, 5_000, 7);
        let a = hit_ratio(&mut HeapLrfu::new(500, 0.75), &trace);
        let b = hit_ratio(&mut ScanLrfu::new(500, 0.75), &trace);
        assert!((a - b).abs() < 1e-12, "heap {a} vs scan {b}");
    }

    #[test]
    fn empty_trace_is_zero() {
        let mut c = HeapLrfu::new(10, 0.9);
        assert_eq!(hit_ratio(&mut c, &[] as &[u64]), 0.0);
    }
}
