//! Worst-case constant-time LRFU (the de-amortized construction of
//! Section 5.1).
//!
//! [`crate::QMaxLrfu`] runs an `O(q)` maintenance pass once per
//! `⌈qγ⌉` requests; this variant pipelines that pass across requests
//! so *every* request performs `O(γ⁻¹)` work:
//!
//! 1. **Refresh** — copy the live `(key, score)` registry into a stale
//!    snapshot array, a few slots per miss;
//! 2. **Select** — run the suspendable selection machine over the
//!    snapshot to find its `E`-th smallest score, where `E` is the
//!    number of entries above the target population;
//! 3. **Evict** — walk the snapshot's bottom `E` entries, removing each
//!    from the cache *unless its score was bumped since the snapshot*
//!    (a bumped entry was hit, so it stays).
//!
//! Hits never touch the pipeline: they bump the key's log-score in the
//! registry in `O(1)`. The eviction guard preserves the paper's LRFU
//! guarantee — the `q` highest-score keys are never evicted: scores
//! only grow, so a key in the current top `q` was already in the
//! snapshot's top `q` (and the machine never selects those), or it
//! arrived after the snapshot (and is not evictable this round).

use crate::score::DecayScore;
use crate::Cache;
use qmax_core::{Entry, OrderedF64};
use qmax_select::{Direction, NthElementMachine, WORK_BOUND_FACTOR};
use std::collections::HashMap;
use std::hash::Hash;

#[derive(Debug, Clone, Copy)]
struct Info {
    /// Index into the key registry.
    idx: usize,
    /// Current log-score.
    w: f64,
}

#[derive(Debug)]
enum Phase<K> {
    /// Waiting for the population to exceed `q + g`.
    Idle,
    /// Copying registry slots `next..snap_len` into the snapshot.
    Refresh { next: usize },
    /// Selecting the `evict`-th smallest snapshot score.
    Select {
        machine: NthElementMachine<Entry<K, OrderedF64>>,
        evict: usize,
    },
    /// Evicting snapshot slots `next..evict` (skipping bumped keys).
    Evict { next: usize, evict: usize },
}

/// Counters describing the de-amortized execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeamortizedLrfuStats {
    /// Completed refresh→select→evict pipelines.
    pub iterations: u64,
    /// Evictions skipped because the key was re-requested mid-pipeline.
    pub eviction_skips: u64,
    /// Largest number of pipeline work units charged to one request.
    pub max_step_units: u64,
}

/// LRFU with worst-case `O(γ⁻¹)` work per request and population
/// between `q` and roughly `q(1+γ)` keys.
#[derive(Debug)]
pub struct DeamortizedLrfu<K> {
    q: usize,
    /// Pipeline granularity `⌈qγ/2⌉`.
    g: usize,
    score: DecayScore,
    map: HashMap<K, Info>,
    keys: Vec<K>,
    snapshot: Vec<Entry<K, OrderedF64>>,
    /// Number of valid snapshot slots (registry size at refresh start).
    snap_len: usize,
    phase: Phase<K>,
    /// Per-miss pipeline budget in work units.
    budget: usize,
    time: u64,
    stats: DeamortizedLrfuStats,
}

impl<K: Clone + Hash + Eq> DeamortizedLrfu<K> {
    /// Creates a de-amortized LRFU cache that never evicts the `q`
    /// highest-score keys, holds at most about `q(1+γ) + O(1)` keys,
    /// and decays with parameter `c`.
    ///
    /// # Panics
    ///
    /// Panics if `q == 0`, `gamma` is not positive and finite, or `c`
    /// is outside `(0, 1)`.
    pub fn new(q: usize, gamma: f64, c: f64) -> Self {
        assert!(q > 0, "q must be positive");
        assert!(
            gamma > 0.0 && gamma.is_finite(),
            "gamma must be positive and finite"
        );
        let g = (((q as f64) * gamma / 2.0).ceil() as usize).max(3);
        // The pipeline must finish within g misses: refresh copies
        // q + 2g slots, selection costs WORK_BOUND_FACTOR * (q + 2g)
        // units, eviction walks at most q + 2g slots.
        let total_work = (WORK_BOUND_FACTOR + 2) * (q + 2 * g);
        let budget = total_work.div_ceil(g) + WORK_BOUND_FACTOR;
        DeamortizedLrfu {
            q,
            g,
            score: DecayScore::new(c),
            map: HashMap::new(),
            keys: Vec::new(),
            snapshot: Vec::new(),
            snap_len: 0,
            phase: Phase::Idle,
            budget,
            time: 0,
            stats: DeamortizedLrfuStats::default(),
        }
    }

    /// Execution counters.
    pub fn stats(&self) -> DeamortizedLrfuStats {
        self.stats
    }

    /// The per-miss pipeline budget (`O(γ⁻¹)`).
    pub fn step_budget(&self) -> usize {
        self.budget
    }

    /// Removes registry slot `idx` (swap-remove, fixing the moved
    /// key's index).
    fn remove_slot(&mut self, idx: usize) {
        let key = self.keys.swap_remove(idx);
        self.map.remove(&key);
        if idx < self.keys.len() {
            let moved = self.keys[idx].clone();
            self.map.get_mut(&moved).expect("registry in sync").idx = idx;
        }
    }

    /// Advances the maintenance pipeline by at most `budget` units.
    fn advance(&mut self) {
        let mut rem = self.budget as i64;
        let step_units = self.budget as u64;
        while rem > 0 {
            match &mut self.phase {
                Phase::Idle => {
                    if self.map.len() <= self.q + self.g {
                        break;
                    }
                    self.snap_len = self.keys.len();
                    if self.snapshot.len() < self.snap_len {
                        // One-off growth; amortizes over the stream.
                        self.snapshot.resize(
                            self.snap_len,
                            Entry::new(self.keys[0].clone(), OrderedF64(0.0)),
                        );
                    }
                    self.phase = Phase::Refresh { next: 0 };
                    rem -= 1;
                }
                Phase::Refresh { next } => {
                    if *next >= self.snap_len {
                        // Snapshot complete: how many entries exceed the
                        // target population of q?
                        let evict = self.snap_len - self.q;
                        debug_assert!(evict >= 1);
                        let machine = NthElementMachine::new(
                            0,
                            self.snap_len,
                            evict - 1,
                            Direction::Ascending,
                        );
                        self.phase = Phase::Select { machine, evict };
                        rem -= 1;
                    } else {
                        let i = *next;
                        let key = self.keys[i].clone();
                        let w = self.map.get(&key).expect("registry in sync").w;
                        self.snapshot[i] = Entry::new(key, OrderedF64(w));
                        *next += 1;
                        rem -= 1;
                    }
                }
                Phase::Select { machine, evict } => {
                    let before = machine.total_ops();
                    machine.step(&mut self.snapshot[..self.snap_len], rem as usize);
                    rem -= (machine.total_ops() - before) as i64;
                    if machine.is_finished() {
                        let evict = *evict;
                        self.phase = Phase::Evict { next: 0, evict };
                    }
                }
                Phase::Evict { next, evict } => {
                    if *next >= *evict {
                        self.stats.iterations += 1;
                        self.phase = Phase::Idle;
                        rem -= 1;
                    } else {
                        let entry = self.snapshot[*next].clone();
                        *next += 1;
                        rem -= 2;
                        match self.map.get(&entry.id) {
                            Some(info) if info.w == entry.val.get() => {
                                let idx = info.idx;
                                self.remove_slot(idx);
                            }
                            Some(_) => self.stats.eviction_skips += 1,
                            // Already gone (cannot happen: snapshot keys
                            // are unique and only this phase removes).
                            None => debug_assert!(false, "snapshot key vanished"),
                        }
                    }
                }
            }
        }
        let used = self.budget as i64 - rem;
        self.stats.max_step_units = self.stats.max_step_units.max(used.max(0) as u64);
        let _ = step_units;
    }
}

impl<K: Clone + Hash + Eq> Cache<K> for DeamortizedLrfu<K> {
    fn request(&mut self, key: K) -> bool {
        self.time += 1;
        let t = self.time;
        if let Some(info) = self.map.get_mut(&key) {
            info.w = self.score.bump(info.w, t);
            return true;
        }
        let idx = self.keys.len();
        self.keys.push(key.clone());
        self.map.insert(
            key,
            Info {
                idx,
                w: self.score.access(t),
            },
        );
        self.advance();
        false
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn capacity_bounds(&self) -> (usize, usize) {
        (self.q, self.q + 2 * self.g + self.g)
    }

    fn reset(&mut self) {
        self.map.clear();
        self.keys.clear();
        self.snapshot.clear();
        self.snap_len = 0;
        self.phase = Phase::Idle;
        self.time = 0;
        self.stats = DeamortizedLrfuStats::default();
    }

    fn name(&self) -> &'static str {
        "lrfu-qmax-wc"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{hit_ratio, HeapLrfu};
    use qmax_traces::gen::arc_like;
    use qmax_traces::rng::SplitMix64;

    #[test]
    fn hits_and_misses() {
        let mut c = DeamortizedLrfu::new(4, 0.5, 0.75);
        assert!(!c.request("a"));
        assert!(c.request("a"));
        assert!(!c.request("b"));
        assert!(c.request("b"));
    }

    #[test]
    fn population_stays_bounded() {
        let q = 100;
        let mut c = DeamortizedLrfu::new(q, 0.5, 0.75);
        let mut rng = SplitMix64::new(1);
        for _ in 0..200_000 {
            c.request(rng.next_below(50_000));
        }
        let (_, hi) = c.capacity_bounds();
        assert!(c.len() <= hi, "population {} above bound {hi}", c.len());
        assert!(c.len() >= q, "population {} below q", c.len());
        assert!(c.stats().iterations > 0, "pipeline never ran");
    }

    #[test]
    fn top_q_scores_are_never_evicted() {
        let q = 32;
        let decay = 0.75;
        let mut cache = DeamortizedLrfu::new(q, 0.5, decay);
        let ds = DecayScore::new(decay);
        let mut reference: HashMap<u64, f64> = HashMap::new();
        let mut rng = SplitMix64::new(7);
        for t in 1..=30_000u64 {
            let key = rng.next_below(300);
            cache.request(key);
            let w = reference.entry(key).or_insert(f64::NEG_INFINITY);
            *w = ds.bump(*w, t);
            if t % 501 == 0 {
                let mut scored: Vec<(u64, f64)> = reference.iter().map(|(&k, &w)| (k, w)).collect();
                scored.sort_by(|a, b| b.1.total_cmp(&a.1));
                for &(k, _) in scored.iter().take(q) {
                    assert!(
                        cache.map.contains_key(&k),
                        "top-{q} key {k} evicted at t={t}"
                    );
                }
            }
        }
    }

    #[test]
    fn per_request_work_is_bounded() {
        let q = 1000;
        let mut c = DeamortizedLrfu::new(q, 0.25, 0.75);
        let mut rng = SplitMix64::new(3);
        for _ in 0..300_000 {
            c.request(rng.next_below(100_000));
        }
        // A single request's pipeline work never exceeds the budget
        // plus one indivisible selection unit.
        assert!(
            c.stats().max_step_units <= c.step_budget() as u64 + 32,
            "max step units {} exceed budget {}",
            c.stats().max_step_units,
            c.step_budget()
        );
    }

    #[test]
    fn hit_ratio_close_to_exact_lrfu() {
        let trace = arc_like(150_000, 15_000, 11);
        let q = 1_500;
        let exact = hit_ratio(&mut HeapLrfu::new(q, 0.75), &trace);
        let ours = hit_ratio(&mut DeamortizedLrfu::new(q, 0.25, 0.75), &trace);
        assert!(
            ours >= exact - 0.02,
            "de-amortized LRFU hit ratio {ours} well below exact {exact}"
        );
    }

    #[test]
    fn reset_clears() {
        let mut c = DeamortizedLrfu::new(8, 0.5, 0.8);
        for k in 0..1000u64 {
            c.request(k % 37);
        }
        c.reset();
        assert!(c.is_empty());
        assert_eq!(c.stats(), DeamortizedLrfuStats::default());
        assert!(!c.request(1u64));
    }
}
