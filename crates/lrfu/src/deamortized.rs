//! Worst-case constant-time LRFU (the de-amortized construction of
//! Section 5.1).
//!
//! [`crate::QMaxLrfu`] runs an `O(q)` maintenance pass once per
//! `⌈qγ⌉` requests; this variant pipelines that pass across requests
//! so *every* request is charged `O(γ⁻¹)` work units:
//!
//! 1. **Refresh** — feed the live `(slot, score)` registry into a q-MAX
//!    *snapshot backend*, a bounded chunk per miss. The backend's
//!    admission threshold Ψ converges to (at most) the q-th largest
//!    snapshot score;
//! 2. **Evict** — walk the registry slots covered by the snapshot,
//!    removing each key whose snapshot score is **strictly below** Ψ —
//!    unless its score was bumped since the snapshot (a bumped entry
//!    was hit, so it stays).
//!
//! Hits never touch the pipeline: they bump the key's log-score in the
//! registry in `O(1)`. The eviction rule preserves the paper's LRFU
//! guarantee — the `q` highest-score keys are never evicted: Ψ never
//! exceeds the q-th largest snapshot score, scores only grow, and the
//! comparison is strict, so every current top-`q` key scores at least
//! Ψ (or arrived after the snapshot and is not evictable this round).
//!
//! The snapshot backend is an [`IntervalBackend`] (default: the
//! array-of-structs [`AmortizedQMax`]), so the structure-of-arrays
//! backend's batched value-lane kernels apply to the refresh feed.
//! With the default *amortized* backend a refresh chunk may absorb one
//! `O(q)` internal compaction — the work-unit *charge* stays bounded,
//! the wall-clock spike does not; hosting the snapshot in
//! [`qmax_core::DeamortizedQMax`] (or its SoA twin) restores a strict
//! worst-case bound at the cost of `2g` extra snapshot slots.

use crate::score::DecayScore;
use crate::Cache;
use qmax_core::{
    AmortizedQMax, FlowIndex, IndexFamily, IntervalBackend, KeyIndex, OrderedF64, SoaAmortizedQMax,
};
use std::hash::Hash;

#[derive(Debug, Clone, Copy)]
struct Info {
    /// Index into the key registry.
    idx: usize,
    /// Current log-score.
    w: f64,
    /// Log-score at the time the current snapshot covered this key.
    snap_w: f64,
    /// Refresh round that last covered this key (0 = never).
    snap_round: u64,
}

#[derive(Debug, Clone, Copy)]
enum Phase {
    /// Waiting for the population to exceed `q + g`.
    Idle,
    /// Feeding registry slots `next..snap_len` into the snapshot.
    Refresh { next: usize },
    /// Examining registry slots `cursor..0` (descending, so
    /// swap-removes only disturb already-visited slots) against the
    /// snapshot threshold `psi`.
    Evict { cursor: usize, psi: OrderedF64 },
}

/// Counters describing the de-amortized execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeamortizedLrfuStats {
    /// Completed refresh→evict pipelines.
    pub iterations: u64,
    /// Evictions skipped because the key was re-requested mid-pipeline.
    pub eviction_skips: u64,
    /// Largest number of pipeline work units charged to one request.
    pub max_step_units: u64,
}

/// LRFU with worst-case `O(γ⁻¹)` charged work per request and
/// population between `q` and roughly `q(1+γ) + 3⌈qγ/2⌉` keys.
///
/// The key registry index defaults to the SIMD-probed
/// [`qmax_core::FlowTable`] ([`FlowIndex`]) — important here, since a
/// registry lookup is the *entire* `O(1)` hit path —
/// [`qmax_core::StdIndex`] restores the `std::collections::HashMap`
/// index as baseline and replay oracle.
#[derive(Debug)]
pub struct DeamortizedLrfu<
    K: Clone + Hash + Eq,
    B = AmortizedQMax<u64, OrderedF64>,
    F: IndexFamily = FlowIndex,
> {
    q: usize,
    /// Pipeline granularity `⌈qγ/2⌉`.
    g: usize,
    score: DecayScore,
    map: F::Index<K, Info>,
    keys: Vec<K>,
    /// Snapshot backend: refreshed from the registry each round; its
    /// threshold Ψ after a full refresh is the eviction cutoff.
    snap: B,
    /// Number of registry slots covered by the current snapshot.
    snap_len: usize,
    /// Refresh round counter (stamps [`Info::snap_round`]).
    round: u64,
    phase: Phase,
    /// Per-miss pipeline budget in work units.
    budget: usize,
    time: u64,
    stats: DeamortizedLrfuStats,
}

/// [`DeamortizedLrfu`] with a structure-of-arrays snapshot backend.
pub type SoaDeamortizedLrfu<K, F = FlowIndex> =
    DeamortizedLrfu<K, SoaAmortizedQMax<u64, OrderedF64>, F>;

impl<K: Clone + Hash + Eq> DeamortizedLrfu<K, AmortizedQMax<u64, OrderedF64>, FlowIndex> {
    /// Creates a de-amortized LRFU cache that never evicts the `q`
    /// highest-score keys, holds at most about `q(1+γ) + 3⌈qγ/2⌉` keys,
    /// and decays with parameter `c`.
    ///
    /// # Panics
    ///
    /// Panics if `q == 0`, `gamma` is not positive and finite, or `c`
    /// is outside `(0, 1)`.
    pub fn new(q: usize, gamma: f64, c: f64) -> Self {
        Self::new_in(q, gamma, c)
    }
}

impl<K: Clone + Hash + Eq, F: IndexFamily> DeamortizedLrfu<K, AmortizedQMax<u64, OrderedF64>, F> {
    /// Like [`DeamortizedLrfu::new`], but with an explicit
    /// [`IndexFamily`] (e.g. `StdIndex` for the HashMap-era baseline).
    pub fn new_in(q: usize, gamma: f64, c: f64) -> Self {
        assert!(q > 0, "q must be positive");
        assert!(
            gamma > 0.0 && gamma.is_finite(),
            "gamma must be positive and finite"
        );
        Self::with_snapshot(gamma, c, AmortizedQMax::new(q, gamma))
    }
}

impl<K: Clone + Hash + Eq> SoaDeamortizedLrfu<K, FlowIndex> {
    /// Like [`DeamortizedLrfu::new`], but the snapshot lives in a
    /// structure-of-arrays backend, so the refresh feed runs the
    /// branchless batched kernel.
    pub fn new_soa(q: usize, gamma: f64, c: f64) -> Self {
        Self::new_soa_in(q, gamma, c)
    }
}

impl<K: Clone + Hash + Eq, F: IndexFamily> SoaDeamortizedLrfu<K, F> {
    /// Like [`SoaDeamortizedLrfu::new_soa`], but with an explicit
    /// [`IndexFamily`].
    pub fn new_soa_in(q: usize, gamma: f64, c: f64) -> Self {
        assert!(q > 0, "q must be positive");
        assert!(
            gamma > 0.0 && gamma.is_finite(),
            "gamma must be positive and finite"
        );
        Self::with_snapshot(gamma, c, SoaAmortizedQMax::new(q, gamma))
    }
}

impl<K: Clone + Hash + Eq, B: IntervalBackend<u64, OrderedF64>, F: IndexFamily>
    DeamortizedLrfu<K, B, F>
{
    /// Creates a de-amortized LRFU cache around the given snapshot
    /// backend prototype; `proto.q()` is the cache target `q`.
    ///
    /// # Panics
    ///
    /// Panics if `gamma` is not positive and finite or `c` is outside
    /// `(0, 1)`.
    pub fn with_snapshot(gamma: f64, c: f64, proto: B) -> Self {
        assert!(
            gamma > 0.0 && gamma.is_finite(),
            "gamma must be positive and finite"
        );
        let q = proto.q();
        let g = (((q as f64) * gamma / 2.0).ceil() as usize).max(3);
        // The pipeline must finish within g misses: refresh feeds at
        // most (population bound) slots at one unit each, eviction
        // examines the same slots at two units each, plus transitions.
        let hi = proto.capacity() + 3 * g;
        let total_work = 3 * hi + 4;
        let budget = total_work.div_ceil(g) + 1;
        DeamortizedLrfu {
            q,
            g,
            score: DecayScore::new(c),
            map: F::Index::with_capacity(hi),
            keys: Vec::new(),
            snap: proto.fresh(),
            snap_len: 0,
            round: 0,
            phase: Phase::Idle,
            budget,
            time: 0,
            stats: DeamortizedLrfuStats::default(),
        }
    }

    /// Routes score bumps through the bounded-error
    /// [`crate::fast_logaddexp`] (error ≤
    /// [`crate::FAST_LOGADDEXP_ABS_ERR`] per merge) instead of the
    /// exact `exp`/`ln_1p` pair.
    pub fn with_fast_merge(mut self, fast: bool) -> Self {
        self.score = self.score.with_fast_merge(fast);
        self
    }

    /// Processes a span of requests, returning the number of hits.
    /// Observationally identical to calling [`Cache::request`] per key
    /// — the hit path is too stateful to reorder — but each
    /// [`qmax_core::PROBE_PIPELINE`]-key stage issues the registry
    /// prefetches for the whole stage up front, so the per-request
    /// probe miss overlaps the previous request's bookkeeping instead
    /// of serializing behind it.
    pub fn request_batch(&mut self, keys: &[K]) -> usize {
        let mut hits = 0;
        for chunk in keys.chunks(qmax_core::PROBE_PIPELINE) {
            self.map.prefetch_keys(chunk);
            for key in chunk {
                hits += usize::from(self.request(key.clone()));
            }
        }
        hits
    }

    /// Execution counters.
    pub fn stats(&self) -> DeamortizedLrfuStats {
        self.stats
    }

    /// The per-miss pipeline budget (`O(γ⁻¹)`).
    pub fn step_budget(&self) -> usize {
        self.budget
    }

    /// Removes registry slot `idx` (swap-remove, fixing the moved
    /// key's index).
    fn remove_slot(&mut self, idx: usize) {
        let key = self.keys.swap_remove(idx);
        self.map.remove(&key);
        if idx < self.keys.len() {
            let moved = self.keys[idx].clone();
            self.map.get_mut(&moved).expect("registry in sync").idx = idx;
        }
    }

    /// Advances the maintenance pipeline by at most `budget` units.
    fn advance(&mut self) {
        let mut rem = self.budget as i64;
        let mut scratch: Vec<(u64, OrderedF64)> = Vec::new();
        while rem > 0 {
            match self.phase {
                Phase::Idle => {
                    if self.map.len() <= self.q + self.g {
                        break;
                    }
                    self.snap_len = self.keys.len();
                    self.round += 1;
                    self.snap.reset();
                    self.phase = Phase::Refresh { next: 0 };
                    rem -= 1;
                }
                Phase::Refresh { next } => {
                    if next >= self.snap_len {
                        match self.snap.threshold() {
                            Some(psi) => {
                                self.phase = Phase::Evict {
                                    cursor: self.snap_len,
                                    psi,
                                };
                            }
                            None => {
                                // The snapshot fit the backend without a
                                // single compaction, so no score is
                                // provably outside the top q: nothing to
                                // evict this round.
                                self.stats.iterations += 1;
                                self.phase = Phase::Idle;
                            }
                        }
                        rem -= 1;
                    } else {
                        let take = (self.snap_len - next).min(rem as usize);
                        scratch.clear();
                        // Batched registry probes: the refresh feed is
                        // the pipeline's only index-bound loop, so run
                        // it through the prefetch-pipelined
                        // `get_mut_batch` (slot order preserved).
                        let round = self.round;
                        self.map
                            .get_mut_batch(&self.keys[next..next + take], |j, info| {
                                let info = info.expect("registry in sync");
                                info.snap_w = info.w;
                                info.snap_round = round;
                                scratch.push(((next + j) as u64, OrderedF64(info.w)));
                            });
                        self.snap.insert_batch(&scratch);
                        self.phase = Phase::Refresh { next: next + take };
                        rem -= take as i64;
                    }
                }
                Phase::Evict { cursor, psi } => {
                    if cursor == 0 {
                        self.stats.iterations += 1;
                        self.phase = Phase::Idle;
                        rem -= 1;
                    } else {
                        let i = cursor - 1;
                        self.phase = Phase::Evict { cursor: i, psi };
                        rem -= 2;
                        debug_assert!(i < self.keys.len(), "registry shrank past cursor");
                        let info = *self.map.get(&self.keys[i]).expect("registry in sync");
                        if info.snap_round == self.round && OrderedF64(info.snap_w) < psi {
                            if info.w == info.snap_w {
                                self.remove_slot(i);
                            } else {
                                // Bumped since the snapshot: it was hit,
                                // so it stays this round.
                                self.stats.eviction_skips += 1;
                            }
                        }
                    }
                }
            }
        }
        let used = self.budget as i64 - rem;
        self.stats.max_step_units = self.stats.max_step_units.max(used.max(0) as u64);
    }
}

impl<K: Clone + Hash + Eq, B: IntervalBackend<u64, OrderedF64>, F: IndexFamily> Cache<K>
    for DeamortizedLrfu<K, B, F>
{
    fn request(&mut self, key: K) -> bool {
        self.time += 1;
        let t = self.time;
        if let Some(info) = self.map.get_mut(&key) {
            info.w = self.score.bump(info.w, t);
            return true;
        }
        let idx = self.keys.len();
        self.keys.push(key.clone());
        self.map.insert(
            key,
            Info {
                idx,
                w: self.score.access(t),
                snap_w: f64::NEG_INFINITY,
                snap_round: 0,
            },
        );
        self.advance();
        false
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn capacity_bounds(&self) -> (usize, usize) {
        (self.q, self.snap.capacity() + 3 * self.g)
    }

    fn reset(&mut self) {
        self.map.clear();
        self.keys.clear();
        self.snap.reset();
        self.snap_len = 0;
        self.round = 0;
        self.phase = Phase::Idle;
        self.time = 0;
        self.stats = DeamortizedLrfuStats::default();
    }

    fn name(&self) -> &'static str {
        "lrfu-qmax-wc"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{hit_ratio, HeapLrfu};
    use qmax_traces::gen::arc_like;
    use qmax_traces::rng::SplitMix64;
    use std::collections::HashMap;

    #[test]
    fn hits_and_misses() {
        let mut c = DeamortizedLrfu::new(4, 0.5, 0.75);
        assert!(!c.request("a"));
        assert!(c.request("a"));
        assert!(!c.request("b"));
        assert!(c.request("b"));
    }

    #[test]
    fn population_stays_bounded() {
        let q = 100;
        let mut c = DeamortizedLrfu::new(q, 0.5, 0.75);
        let mut rng = SplitMix64::new(1);
        for _ in 0..200_000 {
            c.request(rng.next_below(50_000));
        }
        let (_, hi) = c.capacity_bounds();
        assert!(c.len() <= hi, "population {} above bound {hi}", c.len());
        assert!(c.len() >= q, "population {} below q", c.len());
        assert!(c.stats().iterations > 0, "pipeline never ran");
    }

    #[test]
    fn top_q_scores_are_never_evicted() {
        let q = 32;
        let decay = 0.75;
        let mut cache = DeamortizedLrfu::new(q, 0.5, decay);
        let ds = DecayScore::new(decay);
        let mut reference: HashMap<u64, f64> = HashMap::new();
        let mut rng = SplitMix64::new(7);
        for t in 1..=30_000u64 {
            let key = rng.next_below(300);
            cache.request(key);
            let w = reference.entry(key).or_insert(f64::NEG_INFINITY);
            *w = ds.bump(*w, t);
            if t % 501 == 0 {
                let mut scored: Vec<(u64, f64)> = reference.iter().map(|(&k, &w)| (k, w)).collect();
                scored.sort_by(|a, b| b.1.total_cmp(&a.1));
                for &(k, _) in scored.iter().take(q) {
                    assert!(
                        cache.map.contains_key(&k),
                        "top-{q} key {k} evicted at t={t}"
                    );
                }
            }
        }
    }

    #[test]
    fn per_request_work_is_bounded() {
        let q = 1000;
        let mut c = DeamortizedLrfu::new(q, 0.25, 0.75);
        let mut rng = SplitMix64::new(3);
        for _ in 0..300_000 {
            c.request(rng.next_below(100_000));
        }
        // A single request's pipeline work never exceeds the budget
        // plus one indivisible step's worth of slack.
        assert!(
            c.stats().max_step_units <= c.step_budget() as u64 + 32,
            "max step units {} exceed budget {}",
            c.stats().max_step_units,
            c.step_budget()
        );
    }

    #[test]
    fn hit_ratio_close_to_exact_lrfu() {
        let trace = arc_like(150_000, 15_000, 11);
        let q = 1_500;
        let exact = hit_ratio(&mut HeapLrfu::new(q, 0.75), &trace);
        let ours = hit_ratio(&mut DeamortizedLrfu::new(q, 0.25, 0.75), &trace);
        assert!(
            ours >= exact - 0.02,
            "de-amortized LRFU hit ratio {ours} well below exact {exact}"
        );
    }

    #[test]
    fn soa_snapshot_behaves_equivalently() {
        // The eviction cutoff is the snapshot backend's threshold Ψ,
        // which both backends compute identically (same admissions,
        // same compaction points), so AoS- and SoA-snapshot caches
        // replay a trace with the exact same hit sequence.
        let trace = arc_like(80_000, 8_000, 17);
        let mut aos = DeamortizedLrfu::new(400, 0.5, 0.75);
        let mut soa = SoaDeamortizedLrfu::new_soa(400, 0.5, 0.75);
        for &k in &trace {
            assert_eq!(aos.request(k), soa.request(k));
        }
        assert_eq!(aos.len(), soa.len());
        assert_eq!(aos.stats().iterations, soa.stats().iterations);
    }

    #[test]
    fn request_batch_matches_singletons() {
        let trace = arc_like(40_000, 4_000, 23);
        let mut one = DeamortizedLrfu::new(300, 0.5, 0.75);
        let mut batched = DeamortizedLrfu::new(300, 0.5, 0.75);
        let mut h1 = 0usize;
        for &k in &trace {
            h1 += usize::from(one.request(k));
        }
        let mut h2 = 0usize;
        for span in trace.chunks(513) {
            h2 += batched.request_batch(span);
        }
        assert_eq!(h1, h2, "prefetch warm-up must not change behaviour");
        assert_eq!(one.len(), batched.len());
        assert_eq!(one.stats().iterations, batched.stats().iterations);
    }

    #[test]
    fn reset_clears() {
        let mut c = DeamortizedLrfu::new(8, 0.5, 0.8);
        for k in 0..1000u64 {
            c.request(k % 37);
        }
        c.reset();
        assert!(c.is_empty());
        assert_eq!(c.stats(), DeamortizedLrfuStats::default());
        assert!(!c.request(1u64));
    }
}
