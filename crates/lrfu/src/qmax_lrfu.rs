//! The paper's q-MAX based LRFU (Section 5.1): amortized constant time
//! per request.

use crate::score::DecayScore;
use crate::Cache;
use qmax_core::{
    AdaptiveBackend, AmortizedQMax, Entry, FlowIndex, IndexFamily, IntervalBackend, KeyIndex,
    OrderedF64, SoaAmortizedQMax,
};
use qmax_select::{nth_smallest, Kernel};
use std::hash::Hash;

/// LRFU via exponential-decay q-MAX with duplicate merging.
///
/// Requests append `(key, λt)` entries to a log buffer — *including*
/// requests for keys already cached, which simply gain an extra entry
/// (an exact log-sum-exp contribution). When the log plus the carried
/// survivor set reaches `⌈q(1+γ)⌉`, a maintenance pass folds each new
/// entry into its key's accumulator in a stable score arena, finds the
/// q-th largest score with a linear-time selection, and evicts
/// everything below it. Survivors stay in the arena rather than being
/// reinserted into the log, so a pass probes the cache index once per
/// *request* of the period, not once per resident key — the same
/// maintenance schedule as the paper's construction but with roughly
/// half the probe traffic at γ=1. The pass costs `O(q)` and runs at
/// most once per `⌈qγ⌉` requests, so requests cost `O(1 + 1/γ)`
/// amortized — versus `O(log q)` for the heap and `O(q)` for the scan
/// baseline.
///
/// The request log is hosted in an [`IntervalBackend`] (default: the
/// array-of-structs [`AmortizedQMax`]); [`QMaxLrfu::new_soa`] swaps in
/// the structure-of-arrays backend so
/// [`request_batch`](QMaxLrfu::request_batch) appends whole spans
/// through the backend's batch kernel. The backend is configured so it
/// never self-compacts (its own `q` equals the log capacity), which
/// makes the two backends bit-for-bit interchangeable: same hits, same
/// evictions.
///
/// The cache population floats between `q` and `⌈q(1+γ)⌉` distinct
/// keys, and — like the paper's construction — the `q` highest-score
/// keys are never evicted.
///
/// The cache index defaults to the SIMD-probed [`qmax_core::FlowTable`]
/// ([`FlowIndex`]); [`qmax_core::StdIndex`] restores the
/// `std::collections::HashMap` index, kept as the baseline and as the
/// replay oracle for the differential tests.
#[derive(Debug, Clone)]
pub struct QMaxLrfu<
    K: Clone + Hash + Eq,
    B = AmortizedQMax<K, OrderedF64>,
    F: IndexFamily = FlowIndex,
> {
    q: usize,
    cap: usize,
    score: DecayScore,
    /// Request log: one entry per request since the last maintenance
    /// pass. Hosted in a q-MAX backend sized to never self-compact
    /// (maintenance runs first). Unlike earlier revisions, survivors
    /// are **not** reinserted here — their merged scores persist in
    /// [`Self::arena`], so each pass touches each request exactly once.
    buf: B,
    /// Cached keys (the cache content). The value points at the key's
    /// score accumulator in [`Self::arena`] (or is the fresh-insert
    /// sentinel until the first maintenance pass touches the key).
    cached: F::Index<K, MergeSlot>,
    /// Stable score arena, stored as parallel key/score columns so
    /// the maintenance fold and the selection scan walk dense `f64`
    /// memory: one slot per resident key, holding the key's running
    /// log-sum-exp fold. A slot never moves while the key stays
    /// resident, which is what lets maintenance fold only the *new*
    /// log entries — untouched survivors keep their slot and score
    /// as-is. Slots of evicted keys are recycled through
    /// [`Self::arena_free`].
    arena_keys: Vec<K>,
    /// Score column of the arena (see [`Self::arena_keys`]).
    arena_vals: Vec<f64>,
    /// Liveness mask for [`Self::arena`] (freed slots are holes until
    /// reused).
    arena_live: Vec<bool>,
    /// Recycled arena slots, reused in LIFO order.
    arena_free: Vec<u32>,
    /// One arena-slot hint per log entry, recorded in request order by
    /// the probe the request path already pays: hits read the slot off
    /// the resident [`MergeSlot`], misses allocate the slot on the
    /// spot (seeded with `-∞`, the exact identity of `logaddexp`).
    /// Maintenance folds the log straight into `arena[hints[j]]` with
    /// **zero** additional index probes.
    hints: Vec<u32>,
    /// Number of live arena slots (keys carried across the last pass).
    /// The maintenance trigger is `buf.len() + carried == cap`, which
    /// is exactly the old "survivors reinserted into the log" schedule.
    carried: usize,
    /// Persistent scratch buffers so maintenance allocates nothing
    /// steady-state.
    log_scratch: Vec<Entry<K, OrderedF64>>,
    /// Scores-only selection scratch: the maintenance pass ranks the
    /// dense score column directly instead of materializing
    /// `(score, slot)` pairs (see [`Self::maintain`]).
    score_scratch: Vec<OrderedF64>,
    /// Runtime-dispatched comparison kernel for the pivot census over
    /// the score column ([`Kernel::count_gt_eq`]).
    kernel: Kernel<OrderedF64>,
    time: u64,
    maintenance_passes: u64,
}

/// Per-key pointer into the score arena. Every resident key owns a
/// slot from the moment it is inserted (misses allocate on the spot);
/// `INVALID` only exists transiently as the pre-allocation value the
/// batched upsert writes before its visit callback claims a slot.
#[derive(Debug, Clone, Copy)]
struct MergeSlot {
    arena: u32,
}

impl MergeSlot {
    const INVALID: u32 = u32::MAX;
}

impl Default for MergeSlot {
    fn default() -> Self {
        MergeSlot {
            arena: MergeSlot::INVALID,
        }
    }
}

/// [`QMaxLrfu`] whose request log lives in the structure-of-arrays
/// backend (requires `Copy` keys).
pub type SoaQMaxLrfu<K, F = FlowIndex> = QMaxLrfu<K, SoaAmortizedQMax<K, OrderedF64>, F>;

impl<K: Clone + Hash + Eq> QMaxLrfu<K, AmortizedQMax<K, OrderedF64>, FlowIndex> {
    /// Creates a q-MAX LRFU cache that always retains the `q`
    /// highest-score keys, holds at most `⌈q(1+γ)⌉` keys, and decays
    /// with parameter `c`.
    ///
    /// # Panics
    ///
    /// Panics if `q == 0`, `gamma` is not positive and finite, or `c`
    /// is outside `(0, 1)`.
    pub fn new(q: usize, gamma: f64, c: f64) -> Self {
        Self::new_in(q, gamma, c)
    }
}

impl<K: Clone + Hash + Eq, F: IndexFamily> QMaxLrfu<K, AmortizedQMax<K, OrderedF64>, F> {
    /// Like [`QMaxLrfu::new`], but with an explicit [`IndexFamily`]
    /// (e.g. `QMaxLrfu::<u64, _, StdIndex>::new_in(...)` for the
    /// HashMap-era baseline).
    pub fn new_in(q: usize, gamma: f64, c: f64) -> Self {
        let cap = Self::log_capacity(q, gamma);
        Self::with_buffer(q, c, AmortizedQMax::new(cap, gamma))
    }
}

impl<K: Copy + Clone + Hash + Eq + 'static> SoaQMaxLrfu<K, FlowIndex> {
    /// Like [`QMaxLrfu::new`], but the request log is a
    /// structure-of-arrays [`SoaAmortizedQMax`]. Behaviorally identical
    /// to the default backend — same hits and evictions on the same
    /// trace — but batch appends run the branchless lane kernel.
    pub fn new_soa(q: usize, gamma: f64, c: f64) -> Self {
        Self::new_soa_in(q, gamma, c)
    }
}

impl<K: Copy + Clone + Hash + Eq + 'static, F: IndexFamily> SoaQMaxLrfu<K, F> {
    /// Like [`SoaQMaxLrfu::new_soa`], but with an explicit
    /// [`IndexFamily`].
    pub fn new_soa_in(q: usize, gamma: f64, c: f64) -> Self {
        let cap = Self::log_capacity(q, gamma);
        Self::with_buffer(q, c, SoaAmortizedQMax::new(cap, gamma))
    }
}

/// [`QMaxLrfu`] whose request-log layout is chosen by the calibrated
/// backend policy. The log's value lane is [`OrderedF64`] (decayed
/// scores), which the SIMD kernels cannot vectorize, so under the
/// `auto` policy this resolves to the array-of-structs log — the
/// measured-faster layout for the never-self-compacting buffer — while
/// still honoring `QMAX_BACKEND_POLICY=force-soa` overrides.
pub type AdaptiveQMaxLrfu<K, F = FlowIndex> = QMaxLrfu<K, AdaptiveBackend<K, OrderedF64>, F>;

impl<K: Copy + Clone + Hash + Eq + 'static> AdaptiveQMaxLrfu<K, FlowIndex> {
    /// Like [`QMaxLrfu::new`], but the request log delegates to the
    /// layout the global backend policy picks. Behaviorally identical
    /// to both fixed-layout constructors on any trace.
    pub fn new_adaptive(q: usize, gamma: f64, c: f64) -> Self {
        Self::new_adaptive_in(q, gamma, c)
    }
}

impl<K: Copy + Clone + Hash + Eq + 'static, F: IndexFamily> AdaptiveQMaxLrfu<K, F> {
    /// Like [`AdaptiveQMaxLrfu::new_adaptive`], but with an explicit
    /// [`IndexFamily`].
    pub fn new_adaptive_in(q: usize, gamma: f64, c: f64) -> Self {
        let cap = Self::log_capacity(q, gamma);
        Self::with_buffer(q, c, AdaptiveBackend::new(cap, gamma))
    }
}

impl<K: Clone + Hash + Eq, B: IntervalBackend<K, OrderedF64>, F: IndexFamily> QMaxLrfu<K, B, F> {
    fn log_capacity(q: usize, gamma: f64) -> usize {
        assert!(q > 0, "q must be positive");
        assert!(
            gamma > 0.0 && gamma.is_finite(),
            "gamma must be positive and finite"
        );
        (((q as f64) * (1.0 + gamma)).ceil() as usize).max(q + 1)
    }

    /// Creates a q-MAX LRFU cache whose request log is the given
    /// backend. The backend's `q()` becomes the log capacity
    /// `⌈q(1+γ)⌉` and must exceed the cache target `q`; maintenance
    /// always runs before the backend would self-compact, so its own
    /// selection machinery stays idle and its threshold stays `None`.
    ///
    /// # Panics
    ///
    /// Panics if `q == 0`, `proto.q() <= q`, or `c` outside `(0, 1)`.
    pub fn with_buffer(q: usize, c: f64, proto: B) -> Self {
        assert!(q > 0, "q must be positive");
        let cap = proto.q();
        assert!(cap > q, "log capacity must exceed q");
        QMaxLrfu {
            q,
            cap,
            score: DecayScore::new(c),
            buf: proto.fresh(),
            cached: F::Index::with_capacity(cap),
            arena_keys: Vec::new(),
            arena_vals: Vec::new(),
            arena_live: Vec::new(),
            arena_free: Vec::new(),
            hints: Vec::new(),
            carried: 0,
            log_scratch: Vec::new(),
            score_scratch: Vec::new(),
            kernel: Kernel::detect(),
            time: 0,
            maintenance_passes: 0,
        }
    }

    /// Routes maintenance score merges through the bounded-error
    /// [`crate::fast_logaddexp`] (error ≤
    /// [`crate::FAST_LOGADDEXP_ABS_ERR`] per merge) instead of the
    /// exact `exp`/`ln_1p` pair. Rank decisions are unaffected at
    /// default tolerance; see the replay property in
    /// `tests/proptest_score.rs`.
    pub fn with_fast_merge(mut self, fast: bool) -> Self {
        self.score = self.score.with_fast_merge(fast);
        self
    }

    /// Maximum number of distinct keys the cache may hold.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Number of `O(q)` maintenance passes run so far.
    pub fn maintenance_passes(&self) -> u64 {
        self.maintenance_passes
    }

    /// The request log's [`qmax_core::QMax::backend_label`] —
    /// observability for which layout hosts the log (the adaptive
    /// backend reports the layout its policy chose).
    pub fn log_backend_label(&self) -> &'static str {
        self.buf.backend_label()
    }

    /// Claims a score-arena slot for a freshly-missed `key`, seeded
    /// with `-∞` — the exact identity of `logaddexp` on both the exact
    /// and fast paths (see the pinned infinity tests), so the key's
    /// first log entry folds to exactly its own score.
    fn alloc_slot(
        arena_keys: &mut Vec<K>,
        arena_vals: &mut Vec<f64>,
        arena_live: &mut Vec<bool>,
        arena_free: &mut Vec<u32>,
        key: K,
    ) -> u32 {
        match arena_free.pop() {
            Some(idx) => {
                arena_keys[idx as usize] = key;
                arena_vals[idx as usize] = f64::NEG_INFINITY;
                arena_live[idx as usize] = true;
                idx
            }
            None => {
                arena_keys.push(key);
                arena_vals.push(f64::NEG_INFINITY);
                arena_live.push(true);
                (arena_keys.len() - 1) as u32
            }
        }
    }

    /// Merges the period's log entries into the per-key score arena
    /// (log-sum-exp per key) and, if more than `q` distinct keys are
    /// resident, evicts all keys below the q-th largest log-score.
    ///
    /// The merge does **zero** index probes: the request path already
    /// paid one probe per request and recorded each key's arena slot
    /// in [`Self::hints`], so the fold is a straight scatter into the
    /// score arena in log order. Keys untouched this period keep their
    /// slot and score and cost nothing — no reprobe, no reinsertion
    /// into the log. The fold order per key is carried-score-first,
    /// then log order, which is exactly the order the old
    /// survivor-reinsertion scheme produced, so the merged scores are
    /// bit-identical.
    ///
    /// Selection runs over the **dense score column alone**: a
    /// quickselect over copied scores finds the eviction pivot (the
    /// q-th largest score), a [`Kernel::count_gt_eq`] census over the
    /// same column splits the population into above/at/below-pivot,
    /// and one ascending-slot sweep evicts everything below the pivot
    /// plus the first `tie_budget` slots *at* it. No `(score, slot)`
    /// pairs are materialized — the selection shuffles 8-byte scores,
    /// and slot identities are recovered by the sweep. Tie-breaking
    /// (lowest slot number evicted first) and free-slot recycling
    /// (ascending slot order) depend only on arena slot numbers, which
    /// are assigned in miss order — identical for every index family —
    /// so eviction decisions cannot depend on index iteration order
    /// even through exact score ties.
    fn maintain(&mut self) {
        let mut log = std::mem::take(&mut self.log_scratch);
        log.clear();
        self.buf.candidates_into(&mut log);
        debug_assert_eq!(log.len(), self.hints.len());
        let score = self.score;
        for (e, &h) in log.iter().zip(self.hints.iter()) {
            debug_assert!(self.arena_keys[h as usize] == e.id, "stale arena hint");
            let w = &mut self.arena_vals[h as usize];
            *w = score.merge(*w, e.val.get());
        }
        self.hints.clear();
        log.clear();
        self.log_scratch = log;
        // Selection input: the live entries of the dense score column,
        // scores only — no (score, slot) pairs.
        let mut scores = std::mem::take(&mut self.score_scratch);
        scores.clear();
        scores.extend(
            self.arena_vals
                .iter()
                .zip(self.arena_live.iter())
                .filter(|(_, &live)| live)
                .map(|(&w, _)| OrderedF64(w)),
        );
        let live = scores.len();
        if live > self.q {
            let cut = live - self.q;
            // Pivot = the smallest surviving score (q-th largest).
            let pivot = *nth_smallest(&mut scores, cut);
            // Census over the (permuted — counts are order-invariant)
            // column: strictly-below must all go; the remaining
            // eviction quota falls on pivot-equal slots, lowest slot
            // numbers first — the same choice the old (score, slot)
            // lexicographic selection made.
            let (gt, eq) = self.kernel.count_gt_eq(&scores, pivot);
            let below = live - gt - eq;
            let mut tie_budget = cut - below;
            for idx in 0..self.arena_vals.len() {
                if !self.arena_live[idx] {
                    continue;
                }
                let w = OrderedF64(self.arena_vals[idx]);
                let evict = if w < pivot {
                    true
                } else if w == pivot && tie_budget > 0 {
                    tie_budget -= 1;
                    true
                } else {
                    false
                };
                if evict {
                    self.cached.remove(&self.arena_keys[idx]);
                    self.arena_live[idx] = false;
                    self.arena_free.push(idx as u32);
                }
            }
            self.carried = self.q;
        } else {
            self.carried = live;
        }
        self.score_scratch = scores;
        self.buf.reset();
        self.maintenance_passes += 1;
    }

    /// Registers a request for `key` in the cache index, records the
    /// key's arena-slot hint, and returns `(hit, log entry to
    /// append)`. Hits are read-only probes; only misses write to the
    /// index (and claim an arena slot).
    fn account(&mut self, key: K) -> (bool, (K, OrderedF64)) {
        self.time += 1;
        let w = OrderedF64(self.score.access(self.time));
        let (hit, hint) = match self.cached.get_mut(&key) {
            Some(ms) => (true, ms.arena),
            None => {
                let idx = Self::alloc_slot(
                    &mut self.arena_keys,
                    &mut self.arena_vals,
                    &mut self.arena_live,
                    &mut self.arena_free,
                    key.clone(),
                );
                self.cached.insert(key.clone(), MergeSlot { arena: idx });
                (false, idx)
            }
        };
        self.hints.push(hint);
        (hit, (key, w))
    }

    /// Processes a span of requests, returning the number of hits.
    /// Semantically identical to calling [`Cache::request`] per key,
    /// but appends each between-maintenance run of entries to the log
    /// in one backend batch call, and registers the whole span in the
    /// cache index through one batched-upsert pipeline
    /// ([`KeyIndex::entry_batch`]) — the index probes for up to
    /// [`qmax_core::PROBE_PIPELINE`] requests overlap instead of each
    /// paying a dependent cache-miss chain. A duplicate key inside one
    /// span hits from its second occurrence on, exactly as the
    /// singleton loop behaves.
    pub fn request_batch(&mut self, keys: &[K]) -> usize {
        let mut hits = 0;
        let mut scratch: Vec<(K, OrderedF64)> = Vec::new();
        let mut i = 0;
        while i < keys.len() {
            let take = (self.cap - self.carried - self.buf.len()).min(keys.len() - i);
            let span = &keys[i..i + take];
            scratch.clear();
            let t0 = self.time;
            let score = self.score;
            let arena_keys = &mut self.arena_keys;
            let arena_vals = &mut self.arena_vals;
            let arena_live = &mut self.arena_live;
            let arena_free = &mut self.arena_free;
            let hints = &mut self.hints;
            self.cached.entry_batch(
                span,
                |_| MergeSlot::default(),
                |j, slot, present| {
                    hits += usize::from(present);
                    if !present {
                        slot.arena = Self::alloc_slot(
                            arena_keys,
                            arena_vals,
                            arena_live,
                            arena_free,
                            span[j].clone(),
                        );
                    }
                    hints.push(slot.arena);
                    let w = OrderedF64(score.access(t0 + j as u64 + 1));
                    scratch.push((span[j].clone(), w));
                },
            );
            self.time = t0 + take as u64;
            self.buf.insert_batch(&scratch);
            i += take;
            if self.buf.len() + self.carried == self.cap {
                self.maintain();
            }
        }
        hits
    }
}

impl<K: Clone + Hash + Eq, B: IntervalBackend<K, OrderedF64>, F: IndexFamily> Cache<K>
    for QMaxLrfu<K, B, F>
{
    fn request(&mut self, key: K) -> bool {
        let (hit, (key, w)) = self.account(key);
        self.buf.insert(key, w);
        if self.buf.len() + self.carried == self.cap {
            self.maintain();
        }
        hit
    }

    fn len(&self) -> usize {
        self.cached.len()
    }

    fn capacity_bounds(&self) -> (usize, usize) {
        (self.q, self.cap)
    }

    fn reset(&mut self) {
        self.buf.reset();
        self.cached.clear();
        self.arena_keys.clear();
        self.arena_vals.clear();
        self.arena_live.clear();
        self.arena_free.clear();
        self.hints.clear();
        self.carried = 0;
        self.time = 0;
        self.maintenance_passes = 0;
    }

    fn name(&self) -> &'static str {
        "lrfu-qmax"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HeapLrfu;
    use std::collections::HashMap;

    #[test]
    fn hits_and_misses() {
        let mut c = QMaxLrfu::new(4, 0.5, 0.75);
        assert!(!c.request("a"));
        assert!(c.request("a"));
        assert!(!c.request("b"));
        assert!(c.request("b"));
    }

    #[test]
    fn population_stays_within_bounds() {
        let mut c = QMaxLrfu::new(100, 0.5, 0.75);
        for k in 0..100_000u64 {
            c.request(k % 7919);
        }
        let (_, hi) = c.capacity_bounds();
        assert!(c.len() <= hi, "population {} above {hi}", c.len());
        assert!(
            c.len() >= 100,
            "population {} below q after warm-up",
            c.len()
        );
        assert!(c.maintenance_passes() > 0);
    }

    #[test]
    fn top_q_scores_are_never_evicted() {
        // Mirror the requests into an exact reference and verify that
        // the q highest-score keys of the reference are always cached.
        let q = 32;
        let c_decay = 0.75;
        let mut qmax = QMaxLrfu::new(q, 0.5, c_decay);
        let mut reference: HashMap<u64, f64> = HashMap::new();
        let ds = DecayScore::new(c_decay);
        let mut state = 5u64;
        for t in 1..=20_000u64 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let key = (state >> 33) % 200;
            qmax.request(key);
            let w = reference.entry(key).or_insert(f64::NEG_INFINITY);
            *w = ds.bump(*w, t);
            if t % 997 == 0 {
                let mut scored: Vec<(u64, f64)> = reference.iter().map(|(&k, &w)| (k, w)).collect();
                scored.sort_by(|a, b| b.1.total_cmp(&a.1));
                for &(k, _) in scored.iter().take(q) {
                    assert!(
                        qmax.cached.contains_key(&k),
                        "top-{q} key {k} evicted at t={t}"
                    );
                }
            }
        }
    }

    #[test]
    fn maintenance_is_amortized() {
        let q = 1000;
        let gamma = 0.5;
        let mut c = QMaxLrfu::new(q, gamma, 0.75);
        let n = 300_000u64;
        for k in 0..n {
            c.request(k % 50_000);
        }
        // One pass per (cap - q) requests at most (plus slack for the
        // duplicate-heavy regime where fewer keys survive the merge).
        let max_passes = n / ((c.capacity() - q) as u64) + 2;
        assert!(
            c.maintenance_passes() <= max_passes,
            "{} passes exceed {max_passes}",
            c.maintenance_passes()
        );
    }

    #[test]
    fn reset_restores_fresh_state() {
        let mut c = QMaxLrfu::new(16, 0.5, 0.8);
        for k in 0..5000u64 {
            c.request(k % 97);
        }
        assert!(c.maintenance_passes() > 0);
        c.reset();
        assert!(c.is_empty());
        assert_eq!(c.maintenance_passes(), 0);
        assert!(!c.request(1u64), "fresh cache must miss");
        assert!(c.request(1u64), "then hit");
    }

    #[test]
    fn capacity_bounds_reflect_gamma() {
        let c = QMaxLrfu::<u64>::new(100, 0.5, 0.75);
        assert_eq!(c.capacity_bounds(), (100, 150));
    }

    #[test]
    fn hit_ratio_close_to_exact_lrfu_on_skewed_trace() {
        let trace = qmax_traces::gen::arc_like(100_000, 10_000, 3);
        let q = 1_000;
        let exact = crate::hit_ratio(&mut HeapLrfu::new(q, 0.75), &trace);
        let ours = crate::hit_ratio(&mut QMaxLrfu::new(q, 0.25, 0.75), &trace);
        assert!(
            ours >= exact - 0.02,
            "q-MAX LRFU hit ratio {ours} well below exact {exact}"
        );
    }

    #[test]
    fn soa_backend_replays_identically() {
        // The log never self-compacts, so AoS and SoA backends see the
        // exact same entries and produce the exact same hit sequence.
        let trace = qmax_traces::gen::arc_like(60_000, 6_000, 13);
        let mut aos = QMaxLrfu::new(500, 0.5, 0.75);
        let mut soa = SoaQMaxLrfu::new_soa(500, 0.5, 0.75);
        for &k in &trace {
            assert_eq!(aos.request(k), soa.request(k));
        }
        assert_eq!(aos.len(), soa.len());
    }

    #[test]
    fn adaptive_backend_replays_identically() {
        // Whatever layout the policy picks for the log (AoS under
        // `auto` — the score lane is OrderedF64), hits and evictions
        // must match the fixed-layout construction exactly.
        let trace = qmax_traces::gen::arc_like(60_000, 6_000, 13);
        let mut aos = QMaxLrfu::new(500, 0.5, 0.75);
        let mut ada = AdaptiveQMaxLrfu::new_adaptive(500, 0.5, 0.75);
        for &k in &trace {
            assert_eq!(aos.request(k), ada.request(k));
        }
        assert_eq!(aos.len(), ada.len());
    }

    #[test]
    fn request_batch_matches_singletons() {
        let trace = qmax_traces::gen::arc_like(60_000, 6_000, 29);
        let mut one = QMaxLrfu::new(500, 0.5, 0.75);
        let mut batched = SoaQMaxLrfu::new_soa(500, 0.5, 0.75);
        let mut hits_one = 0usize;
        for &k in &trace {
            hits_one += usize::from(one.request(k));
        }
        let mut hits_batch = 0usize;
        for span in trace.chunks(777) {
            hits_batch += batched.request_batch(span);
        }
        assert_eq!(hits_one, hits_batch);
        assert_eq!(one.len(), batched.len());
    }
}
