//! The paper's q-MAX based LRFU (Section 5.1): amortized constant time
//! per request.

use crate::score::DecayScore;
use crate::Cache;
use qmax_core::Entry;
use qmax_core::OrderedF64;
use qmax_select::nth_smallest;
use std::collections::HashMap;
use std::hash::Hash;

/// LRFU via exponential-decay q-MAX with duplicate merging.
///
/// Requests append `(key, λt)` entries to a `⌈q(1+γ)⌉`-slot buffer —
/// *including* requests for keys already cached, which simply gain an
/// extra entry (an exact log-sum-exp contribution). When the buffer
/// fills, a maintenance pass merges each key's entries into one
/// log-score, finds the q-th largest score with a linear-time
/// selection, and evicts everything below it. The pass costs `O(q)` and
/// runs at most once per `⌈qγ⌉` requests, so requests cost `O(1 + 1/γ)`
/// amortized — versus `O(log q)` for the heap and `O(q)` for the scan
/// baseline.
///
/// The cache population floats between `q` and `⌈q(1+γ)⌉` distinct
/// keys, and — like the paper's construction — the `q` highest-score
/// keys are never evicted.
#[derive(Debug, Clone)]
pub struct QMaxLrfu<K> {
    q: usize,
    cap: usize,
    score: DecayScore,
    /// Request log: one entry per request since the last merge, plus
    /// one merged entry per surviving key.
    buf: Vec<Entry<K, OrderedF64>>,
    /// Cached keys (the cache content) with their entry multiplicity.
    cached: HashMap<K, u32>,
    time: u64,
    maintenance_passes: u64,
}

impl<K: Clone + Hash + Eq> QMaxLrfu<K> {
    /// Creates a q-MAX LRFU cache that always retains the `q`
    /// highest-score keys, holds at most `⌈q(1+γ)⌉` keys, and decays
    /// with parameter `c`.
    ///
    /// # Panics
    ///
    /// Panics if `q == 0`, `gamma` is not positive and finite, or `c`
    /// is outside `(0, 1)`.
    pub fn new(q: usize, gamma: f64, c: f64) -> Self {
        assert!(q > 0, "q must be positive");
        assert!(
            gamma > 0.0 && gamma.is_finite(),
            "gamma must be positive and finite"
        );
        let cap = (((q as f64) * (1.0 + gamma)).ceil() as usize).max(q + 1);
        QMaxLrfu {
            q,
            cap,
            score: DecayScore::new(c),
            buf: Vec::with_capacity(cap),
            cached: HashMap::new(),
            time: 0,
            maintenance_passes: 0,
        }
    }

    /// Maximum number of distinct keys the cache may hold.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Number of `O(q)` maintenance passes run so far.
    pub fn maintenance_passes(&self) -> u64 {
        self.maintenance_passes
    }

    /// Merges duplicate entries (log-sum-exp per key) and, if more than
    /// `q` distinct keys remain, evicts all keys below the q-th largest
    /// log-score.
    fn maintain(&mut self) {
        let mut merged: HashMap<K, f64> = HashMap::with_capacity(self.buf.len());
        for e in self.buf.drain(..) {
            match merged.get_mut(&e.id) {
                Some(w) => *w = crate::score::logaddexp(*w, e.val.get()),
                None => {
                    merged.insert(e.id, e.val.get());
                }
            }
        }
        self.buf.extend(
            merged
                .into_iter()
                .map(|(k, w)| Entry::new(k, OrderedF64(w))),
        );
        if self.buf.len() > self.q {
            let cut = self.buf.len() - self.q;
            nth_smallest(&mut self.buf, cut);
            for evicted in self.buf.drain(..cut) {
                self.cached.remove(&evicted.id);
            }
        }
        for e in &self.buf {
            self.cached.insert(e.id.clone(), 1);
        }
        self.maintenance_passes += 1;
    }
}

impl<K: Clone + Hash + Eq> Cache<K> for QMaxLrfu<K> {
    fn request(&mut self, key: K) -> bool {
        self.time += 1;
        let w = OrderedF64(self.score.access(self.time));
        let hit = match self.cached.get_mut(&key) {
            Some(mult) => {
                *mult += 1;
                true
            }
            None => {
                self.cached.insert(key.clone(), 1);
                false
            }
        };
        self.buf.push(Entry::new(key, w));
        if self.buf.len() == self.cap {
            self.maintain();
        }
        hit
    }

    fn len(&self) -> usize {
        self.cached.len()
    }

    fn capacity_bounds(&self) -> (usize, usize) {
        (self.q, self.cap)
    }

    fn reset(&mut self) {
        self.buf.clear();
        self.cached.clear();
        self.time = 0;
        self.maintenance_passes = 0;
    }

    fn name(&self) -> &'static str {
        "lrfu-qmax"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HeapLrfu;

    #[test]
    fn hits_and_misses() {
        let mut c = QMaxLrfu::new(4, 0.5, 0.75);
        assert!(!c.request("a"));
        assert!(c.request("a"));
        assert!(!c.request("b"));
        assert!(c.request("b"));
    }

    #[test]
    fn population_stays_within_bounds() {
        let mut c = QMaxLrfu::new(100, 0.5, 0.75);
        for k in 0..100_000u64 {
            c.request(k % 7919);
        }
        let (_, hi) = c.capacity_bounds();
        assert!(c.len() <= hi, "population {} above {hi}", c.len());
        assert!(
            c.len() >= 100,
            "population {} below q after warm-up",
            c.len()
        );
        assert!(c.maintenance_passes() > 0);
    }

    #[test]
    fn top_q_scores_are_never_evicted() {
        // Mirror the requests into an exact reference and verify that
        // the q highest-score keys of the reference are always cached.
        let q = 32;
        let c_decay = 0.75;
        let mut qmax = QMaxLrfu::new(q, 0.5, c_decay);
        let mut reference: HashMap<u64, f64> = HashMap::new();
        let ds = DecayScore::new(c_decay);
        let mut state = 5u64;
        for t in 1..=20_000u64 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let key = (state >> 33) % 200;
            qmax.request(key);
            let w = reference.entry(key).or_insert(f64::NEG_INFINITY);
            *w = ds.bump(*w, t);
            if t % 997 == 0 {
                let mut scored: Vec<(u64, f64)> = reference.iter().map(|(&k, &w)| (k, w)).collect();
                scored.sort_by(|a, b| b.1.total_cmp(&a.1));
                for &(k, _) in scored.iter().take(q) {
                    assert!(
                        qmax.cached.contains_key(&k),
                        "top-{q} key {k} evicted at t={t}"
                    );
                }
            }
        }
    }

    #[test]
    fn maintenance_is_amortized() {
        let q = 1000;
        let gamma = 0.5;
        let mut c = QMaxLrfu::new(q, gamma, 0.75);
        let n = 300_000u64;
        for k in 0..n {
            c.request(k % 50_000);
        }
        // One pass per (cap - q) requests at most (plus slack for the
        // duplicate-heavy regime where fewer keys survive the merge).
        let max_passes = n / ((c.capacity() - q) as u64) + 2;
        assert!(
            c.maintenance_passes() <= max_passes,
            "{} passes exceed {max_passes}",
            c.maintenance_passes()
        );
    }

    #[test]
    fn reset_restores_fresh_state() {
        let mut c = QMaxLrfu::new(16, 0.5, 0.8);
        for k in 0..5000u64 {
            c.request(k % 97);
        }
        assert!(c.maintenance_passes() > 0);
        c.reset();
        assert!(c.is_empty());
        assert_eq!(c.maintenance_passes(), 0);
        assert!(!c.request(1u64), "fresh cache must miss");
        assert!(c.request(1u64), "then hit");
    }

    #[test]
    fn capacity_bounds_reflect_gamma() {
        let c = QMaxLrfu::<u64>::new(100, 0.5, 0.75);
        assert_eq!(c.capacity_bounds(), (100, 150));
    }

    #[test]
    fn hit_ratio_close_to_exact_lrfu_on_skewed_trace() {
        let trace = qmax_traces::gen::arc_like(100_000, 10_000, 3);
        let q = 1_000;
        let exact = crate::hit_ratio(&mut HeapLrfu::new(q, 0.75), &trace);
        let ours = crate::hit_ratio(&mut QMaxLrfu::new(q, 0.25, 0.75), &trace);
        assert!(
            ours >= exact - 0.02,
            "q-MAX LRFU hit ratio {ours} well below exact {exact}"
        );
    }
}
