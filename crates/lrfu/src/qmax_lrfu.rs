//! The paper's q-MAX based LRFU (Section 5.1): amortized constant time
//! per request.

use crate::score::DecayScore;
use crate::Cache;
use qmax_core::{
    AmortizedQMax, Entry, FlowIndex, IndexFamily, IntervalBackend, KeyIndex, OrderedF64,
    SoaAmortizedQMax,
};
use qmax_select::nth_smallest;
use std::hash::Hash;

/// LRFU via exponential-decay q-MAX with duplicate merging.
///
/// Requests append `(key, λt)` entries to a `⌈q(1+γ)⌉`-slot buffer —
/// *including* requests for keys already cached, which simply gain an
/// extra entry (an exact log-sum-exp contribution). When the buffer
/// fills, a maintenance pass merges each key's entries into one
/// log-score, finds the q-th largest score with a linear-time
/// selection, and evicts everything below it. The pass costs `O(q)` and
/// runs at most once per `⌈qγ⌉` requests, so requests cost `O(1 + 1/γ)`
/// amortized — versus `O(log q)` for the heap and `O(q)` for the scan
/// baseline.
///
/// The request log is hosted in an [`IntervalBackend`] (default: the
/// array-of-structs [`AmortizedQMax`]); [`QMaxLrfu::new_soa`] swaps in
/// the structure-of-arrays backend so
/// [`request_batch`](QMaxLrfu::request_batch) appends whole spans
/// through the backend's batch kernel. The backend is configured so it
/// never self-compacts (its own `q` equals the log capacity), which
/// makes the two backends bit-for-bit interchangeable: same hits, same
/// evictions.
///
/// The cache population floats between `q` and `⌈q(1+γ)⌉` distinct
/// keys, and — like the paper's construction — the `q` highest-score
/// keys are never evicted.
///
/// The cache index defaults to the SIMD-probed [`qmax_core::FlowTable`]
/// ([`FlowIndex`]); [`qmax_core::StdIndex`] restores the
/// `std::collections::HashMap` index, kept as the baseline and as the
/// replay oracle for the differential tests.
#[derive(Debug, Clone)]
pub struct QMaxLrfu<
    K: Clone + Hash + Eq,
    B = AmortizedQMax<K, OrderedF64>,
    F: IndexFamily = FlowIndex,
> {
    q: usize,
    cap: usize,
    score: DecayScore,
    /// Request log: one entry per request since the last merge, plus
    /// one merged entry per surviving key. Hosted in a q-MAX backend
    /// sized to never self-compact (maintenance runs first).
    buf: B,
    /// Cached keys (the cache content). The value is per-pass merge
    /// bookkeeping for [`Self::maintain`], which folds the log through
    /// this index in one probe per entry instead of building a second
    /// hash table: `epoch` stamps whether the key was already seen this
    /// pass, `slot` points at its accumulator in the survivors scratch.
    cached: F::Index<K, MergeSlot>,
    /// Maintenance-pass counter for [`MergeSlot::epoch`] (starts at 1;
    /// 0 is the fresh-insert sentinel).
    epoch: u32,
    /// Persistent scratch buffers so maintenance allocates nothing
    /// steady-state.
    log_scratch: Vec<Entry<K, OrderedF64>>,
    kept_scratch: Vec<(K, OrderedF64)>,
    time: u64,
    maintenance_passes: u64,
}

/// Per-key merge bookkeeping: `epoch` identifies the maintenance pass
/// that last touched the key, `slot` its accumulator index within that
/// pass. Both are only meaningful inside one [`QMaxLrfu::maintain`]
/// call; between passes the values are simply stale.
#[derive(Debug, Clone, Copy, Default)]
struct MergeSlot {
    epoch: u32,
    slot: u32,
}

/// [`QMaxLrfu`] whose request log lives in the structure-of-arrays
/// backend (requires `Copy` keys).
pub type SoaQMaxLrfu<K, F = FlowIndex> = QMaxLrfu<K, SoaAmortizedQMax<K, OrderedF64>, F>;

impl<K: Clone + Hash + Eq> QMaxLrfu<K, AmortizedQMax<K, OrderedF64>, FlowIndex> {
    /// Creates a q-MAX LRFU cache that always retains the `q`
    /// highest-score keys, holds at most `⌈q(1+γ)⌉` keys, and decays
    /// with parameter `c`.
    ///
    /// # Panics
    ///
    /// Panics if `q == 0`, `gamma` is not positive and finite, or `c`
    /// is outside `(0, 1)`.
    pub fn new(q: usize, gamma: f64, c: f64) -> Self {
        Self::new_in(q, gamma, c)
    }
}

impl<K: Clone + Hash + Eq, F: IndexFamily> QMaxLrfu<K, AmortizedQMax<K, OrderedF64>, F> {
    /// Like [`QMaxLrfu::new`], but with an explicit [`IndexFamily`]
    /// (e.g. `QMaxLrfu::<u64, _, StdIndex>::new_in(...)` for the
    /// HashMap-era baseline).
    pub fn new_in(q: usize, gamma: f64, c: f64) -> Self {
        let cap = Self::log_capacity(q, gamma);
        Self::with_buffer(q, c, AmortizedQMax::new(cap, gamma))
    }
}

impl<K: Copy + Clone + Hash + Eq + 'static> SoaQMaxLrfu<K, FlowIndex> {
    /// Like [`QMaxLrfu::new`], but the request log is a
    /// structure-of-arrays [`SoaAmortizedQMax`]. Behaviorally identical
    /// to the default backend — same hits and evictions on the same
    /// trace — but batch appends run the branchless lane kernel.
    pub fn new_soa(q: usize, gamma: f64, c: f64) -> Self {
        Self::new_soa_in(q, gamma, c)
    }
}

impl<K: Copy + Clone + Hash + Eq + 'static, F: IndexFamily> SoaQMaxLrfu<K, F> {
    /// Like [`SoaQMaxLrfu::new_soa`], but with an explicit
    /// [`IndexFamily`].
    pub fn new_soa_in(q: usize, gamma: f64, c: f64) -> Self {
        let cap = Self::log_capacity(q, gamma);
        Self::with_buffer(q, c, SoaAmortizedQMax::new(cap, gamma))
    }
}

impl<K: Clone + Hash + Eq, B: IntervalBackend<K, OrderedF64>, F: IndexFamily> QMaxLrfu<K, B, F> {
    fn log_capacity(q: usize, gamma: f64) -> usize {
        assert!(q > 0, "q must be positive");
        assert!(
            gamma > 0.0 && gamma.is_finite(),
            "gamma must be positive and finite"
        );
        (((q as f64) * (1.0 + gamma)).ceil() as usize).max(q + 1)
    }

    /// Creates a q-MAX LRFU cache whose request log is the given
    /// backend. The backend's `q()` becomes the log capacity
    /// `⌈q(1+γ)⌉` and must exceed the cache target `q`; maintenance
    /// always runs before the backend would self-compact, so its own
    /// selection machinery stays idle and its threshold stays `None`.
    ///
    /// # Panics
    ///
    /// Panics if `q == 0`, `proto.q() <= q`, or `c` outside `(0, 1)`.
    pub fn with_buffer(q: usize, c: f64, proto: B) -> Self {
        assert!(q > 0, "q must be positive");
        let cap = proto.q();
        assert!(cap > q, "log capacity must exceed q");
        QMaxLrfu {
            q,
            cap,
            score: DecayScore::new(c),
            buf: proto.fresh(),
            cached: F::Index::with_capacity(cap),
            epoch: 0,
            log_scratch: Vec::new(),
            kept_scratch: Vec::new(),
            time: 0,
            maintenance_passes: 0,
        }
    }

    /// Maximum number of distinct keys the cache may hold.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Number of `O(q)` maintenance passes run so far.
    pub fn maintenance_passes(&self) -> u64 {
        self.maintenance_passes
    }

    /// Merges duplicate entries (log-sum-exp per key) and, if more than
    /// `q` distinct keys remain, evicts all keys below the q-th largest
    /// log-score.
    ///
    /// The merge runs through the `cached` index itself — one probe per
    /// log entry — using epoch-stamped accumulator slots, so the pass
    /// needs no second hash table, no survivor reinsertion (survivors
    /// are already resident; only evicted keys are touched again), and
    /// no steady-state allocation. Survivors accumulate in
    /// first-occurrence log order, which is identical for every index
    /// family — so eviction decisions cannot depend on index iteration
    /// order even through value ties.
    fn maintain(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.epoch = 1; // skip the fresh-insert sentinel on wrap
        }
        let mut log = std::mem::take(&mut self.log_scratch);
        log.clear();
        self.buf.candidates_into(&mut log);
        let mut survivors: Vec<Entry<K, OrderedF64>> = Vec::with_capacity(log.len());
        for e in log.drain(..) {
            let ms = self
                .cached
                .get_mut(&e.id)
                .expect("every logged key is resident until maintenance evicts it");
            if ms.epoch == self.epoch {
                let w = &mut survivors[ms.slot as usize].val;
                *w = OrderedF64(crate::score::logaddexp(w.get(), e.val.get()));
            } else {
                ms.epoch = self.epoch;
                ms.slot = survivors.len() as u32;
                survivors.push(e);
            }
        }
        self.log_scratch = log;
        if survivors.len() > self.q {
            let cut = survivors.len() - self.q;
            nth_smallest(&mut survivors, cut);
            for evicted in survivors.drain(..cut) {
                self.cached.remove(&evicted.id);
            }
        }
        self.buf.reset();
        let mut kept = std::mem::take(&mut self.kept_scratch);
        kept.clear();
        kept.extend(survivors.into_iter().map(|e| (e.id, e.val)));
        self.buf.insert_batch(&kept);
        self.kept_scratch = kept;
        self.maintenance_passes += 1;
    }

    /// Registers a request for `key` in the cache index and returns
    /// `(hit, log entry to append)`. Hits are read-only probes; only
    /// misses write to the index.
    fn account(&mut self, key: K) -> (bool, (K, OrderedF64)) {
        self.time += 1;
        let w = OrderedF64(self.score.access(self.time));
        let hit = self.cached.contains_key(&key);
        if !hit {
            self.cached.insert(key.clone(), MergeSlot::default());
        }
        (hit, (key, w))
    }

    /// Processes a span of requests, returning the number of hits.
    /// Semantically identical to calling [`Cache::request`] per key,
    /// but appends each between-maintenance run of entries to the log
    /// in one backend batch call.
    pub fn request_batch(&mut self, keys: &[K]) -> usize {
        let mut hits = 0;
        let mut scratch: Vec<(K, OrderedF64)> = Vec::new();
        let mut i = 0;
        while i < keys.len() {
            let take = (self.cap - self.buf.len()).min(keys.len() - i);
            scratch.clear();
            for key in &keys[i..i + take] {
                let (hit, entry) = self.account(key.clone());
                hits += usize::from(hit);
                scratch.push(entry);
            }
            self.buf.insert_batch(&scratch);
            i += take;
            if self.buf.len() == self.cap {
                self.maintain();
            }
        }
        hits
    }
}

impl<K: Clone + Hash + Eq, B: IntervalBackend<K, OrderedF64>, F: IndexFamily> Cache<K>
    for QMaxLrfu<K, B, F>
{
    fn request(&mut self, key: K) -> bool {
        let (hit, (key, w)) = self.account(key);
        self.buf.insert(key, w);
        if self.buf.len() == self.cap {
            self.maintain();
        }
        hit
    }

    fn len(&self) -> usize {
        self.cached.len()
    }

    fn capacity_bounds(&self) -> (usize, usize) {
        (self.q, self.cap)
    }

    fn reset(&mut self) {
        self.buf.reset();
        self.cached.clear();
        self.time = 0;
        self.maintenance_passes = 0;
    }

    fn name(&self) -> &'static str {
        "lrfu-qmax"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HeapLrfu;
    use std::collections::HashMap;

    #[test]
    fn hits_and_misses() {
        let mut c = QMaxLrfu::new(4, 0.5, 0.75);
        assert!(!c.request("a"));
        assert!(c.request("a"));
        assert!(!c.request("b"));
        assert!(c.request("b"));
    }

    #[test]
    fn population_stays_within_bounds() {
        let mut c = QMaxLrfu::new(100, 0.5, 0.75);
        for k in 0..100_000u64 {
            c.request(k % 7919);
        }
        let (_, hi) = c.capacity_bounds();
        assert!(c.len() <= hi, "population {} above {hi}", c.len());
        assert!(
            c.len() >= 100,
            "population {} below q after warm-up",
            c.len()
        );
        assert!(c.maintenance_passes() > 0);
    }

    #[test]
    fn top_q_scores_are_never_evicted() {
        // Mirror the requests into an exact reference and verify that
        // the q highest-score keys of the reference are always cached.
        let q = 32;
        let c_decay = 0.75;
        let mut qmax = QMaxLrfu::new(q, 0.5, c_decay);
        let mut reference: HashMap<u64, f64> = HashMap::new();
        let ds = DecayScore::new(c_decay);
        let mut state = 5u64;
        for t in 1..=20_000u64 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let key = (state >> 33) % 200;
            qmax.request(key);
            let w = reference.entry(key).or_insert(f64::NEG_INFINITY);
            *w = ds.bump(*w, t);
            if t % 997 == 0 {
                let mut scored: Vec<(u64, f64)> = reference.iter().map(|(&k, &w)| (k, w)).collect();
                scored.sort_by(|a, b| b.1.total_cmp(&a.1));
                for &(k, _) in scored.iter().take(q) {
                    assert!(
                        qmax.cached.contains_key(&k),
                        "top-{q} key {k} evicted at t={t}"
                    );
                }
            }
        }
    }

    #[test]
    fn maintenance_is_amortized() {
        let q = 1000;
        let gamma = 0.5;
        let mut c = QMaxLrfu::new(q, gamma, 0.75);
        let n = 300_000u64;
        for k in 0..n {
            c.request(k % 50_000);
        }
        // One pass per (cap - q) requests at most (plus slack for the
        // duplicate-heavy regime where fewer keys survive the merge).
        let max_passes = n / ((c.capacity() - q) as u64) + 2;
        assert!(
            c.maintenance_passes() <= max_passes,
            "{} passes exceed {max_passes}",
            c.maintenance_passes()
        );
    }

    #[test]
    fn reset_restores_fresh_state() {
        let mut c = QMaxLrfu::new(16, 0.5, 0.8);
        for k in 0..5000u64 {
            c.request(k % 97);
        }
        assert!(c.maintenance_passes() > 0);
        c.reset();
        assert!(c.is_empty());
        assert_eq!(c.maintenance_passes(), 0);
        assert!(!c.request(1u64), "fresh cache must miss");
        assert!(c.request(1u64), "then hit");
    }

    #[test]
    fn capacity_bounds_reflect_gamma() {
        let c = QMaxLrfu::<u64>::new(100, 0.5, 0.75);
        assert_eq!(c.capacity_bounds(), (100, 150));
    }

    #[test]
    fn hit_ratio_close_to_exact_lrfu_on_skewed_trace() {
        let trace = qmax_traces::gen::arc_like(100_000, 10_000, 3);
        let q = 1_000;
        let exact = crate::hit_ratio(&mut HeapLrfu::new(q, 0.75), &trace);
        let ours = crate::hit_ratio(&mut QMaxLrfu::new(q, 0.25, 0.75), &trace);
        assert!(
            ours >= exact - 0.02,
            "q-MAX LRFU hit ratio {ours} well below exact {exact}"
        );
    }

    #[test]
    fn soa_backend_replays_identically() {
        // The log never self-compacts, so AoS and SoA backends see the
        // exact same entries and produce the exact same hit sequence.
        let trace = qmax_traces::gen::arc_like(60_000, 6_000, 13);
        let mut aos = QMaxLrfu::new(500, 0.5, 0.75);
        let mut soa = SoaQMaxLrfu::new_soa(500, 0.5, 0.75);
        for &k in &trace {
            assert_eq!(aos.request(k), soa.request(k));
        }
        assert_eq!(aos.len(), soa.len());
    }

    #[test]
    fn request_batch_matches_singletons() {
        let trace = qmax_traces::gen::arc_like(60_000, 6_000, 29);
        let mut one = QMaxLrfu::new(500, 0.5, 0.75);
        let mut batched = SoaQMaxLrfu::new_soa(500, 0.5, 0.75);
        let mut hits_one = 0usize;
        for &k in &trace {
            hits_one += usize::from(one.request(k));
        }
        let mut hits_batch = 0usize;
        for span in trace.chunks(777) {
            hits_batch += batched.request_batch(span);
        }
        assert_eq!(hits_one, hits_batch);
        assert_eq!(one.len(), batched.len());
    }
}
