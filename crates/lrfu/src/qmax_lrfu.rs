//! The paper's q-MAX based LRFU (Section 5.1): amortized constant time
//! per request.

use crate::score::DecayScore;
use crate::Cache;
use qmax_core::{AmortizedQMax, Entry, IntervalBackend, OrderedF64, SoaAmortizedQMax};
use qmax_select::nth_smallest;
use std::collections::HashMap;
use std::hash::Hash;

/// LRFU via exponential-decay q-MAX with duplicate merging.
///
/// Requests append `(key, λt)` entries to a `⌈q(1+γ)⌉`-slot buffer —
/// *including* requests for keys already cached, which simply gain an
/// extra entry (an exact log-sum-exp contribution). When the buffer
/// fills, a maintenance pass merges each key's entries into one
/// log-score, finds the q-th largest score with a linear-time
/// selection, and evicts everything below it. The pass costs `O(q)` and
/// runs at most once per `⌈qγ⌉` requests, so requests cost `O(1 + 1/γ)`
/// amortized — versus `O(log q)` for the heap and `O(q)` for the scan
/// baseline.
///
/// The request log is hosted in an [`IntervalBackend`] (default: the
/// array-of-structs [`AmortizedQMax`]); [`QMaxLrfu::new_soa`] swaps in
/// the structure-of-arrays backend so
/// [`request_batch`](QMaxLrfu::request_batch) appends whole spans
/// through the backend's batch kernel. The backend is configured so it
/// never self-compacts (its own `q` equals the log capacity), which
/// makes the two backends bit-for-bit interchangeable: same hits, same
/// evictions.
///
/// The cache population floats between `q` and `⌈q(1+γ)⌉` distinct
/// keys, and — like the paper's construction — the `q` highest-score
/// keys are never evicted.
#[derive(Debug, Clone)]
pub struct QMaxLrfu<K, B = AmortizedQMax<K, OrderedF64>> {
    q: usize,
    cap: usize,
    score: DecayScore,
    /// Request log: one entry per request since the last merge, plus
    /// one merged entry per surviving key. Hosted in a q-MAX backend
    /// sized to never self-compact (maintenance runs first).
    buf: B,
    /// Cached keys (the cache content) with their entry multiplicity.
    cached: HashMap<K, u32>,
    time: u64,
    maintenance_passes: u64,
}

/// [`QMaxLrfu`] whose request log lives in the structure-of-arrays
/// backend (requires `Copy` keys).
pub type SoaQMaxLrfu<K> = QMaxLrfu<K, SoaAmortizedQMax<K, OrderedF64>>;

impl<K: Clone + Hash + Eq> QMaxLrfu<K> {
    /// Creates a q-MAX LRFU cache that always retains the `q`
    /// highest-score keys, holds at most `⌈q(1+γ)⌉` keys, and decays
    /// with parameter `c`.
    ///
    /// # Panics
    ///
    /// Panics if `q == 0`, `gamma` is not positive and finite, or `c`
    /// is outside `(0, 1)`.
    pub fn new(q: usize, gamma: f64, c: f64) -> Self {
        let cap = Self::log_capacity(q, gamma);
        Self::with_buffer(q, c, AmortizedQMax::new(cap, gamma))
    }
}

impl<K: Copy + Hash + Eq + 'static> SoaQMaxLrfu<K> {
    /// Like [`QMaxLrfu::new`], but the request log is a
    /// structure-of-arrays [`SoaAmortizedQMax`]. Behaviorally identical
    /// to the default backend — same hits and evictions on the same
    /// trace — but batch appends run the branchless lane kernel.
    pub fn new_soa(q: usize, gamma: f64, c: f64) -> Self {
        let cap = Self::log_capacity(q, gamma);
        Self::with_buffer(q, c, SoaAmortizedQMax::new(cap, gamma))
    }
}

impl<K: Clone + Hash + Eq, B: IntervalBackend<K, OrderedF64>> QMaxLrfu<K, B> {
    fn log_capacity(q: usize, gamma: f64) -> usize {
        assert!(q > 0, "q must be positive");
        assert!(
            gamma > 0.0 && gamma.is_finite(),
            "gamma must be positive and finite"
        );
        (((q as f64) * (1.0 + gamma)).ceil() as usize).max(q + 1)
    }

    /// Creates a q-MAX LRFU cache whose request log is the given
    /// backend. The backend's `q()` becomes the log capacity
    /// `⌈q(1+γ)⌉` and must exceed the cache target `q`; maintenance
    /// always runs before the backend would self-compact, so its own
    /// selection machinery stays idle and its threshold stays `None`.
    ///
    /// # Panics
    ///
    /// Panics if `q == 0`, `proto.q() <= q`, or `c` outside `(0, 1)`.
    pub fn with_buffer(q: usize, c: f64, proto: B) -> Self {
        assert!(q > 0, "q must be positive");
        let cap = proto.q();
        assert!(cap > q, "log capacity must exceed q");
        QMaxLrfu {
            q,
            cap,
            score: DecayScore::new(c),
            buf: proto.fresh(),
            cached: HashMap::new(),
            time: 0,
            maintenance_passes: 0,
        }
    }

    /// Maximum number of distinct keys the cache may hold.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Number of `O(q)` maintenance passes run so far.
    pub fn maintenance_passes(&self) -> u64 {
        self.maintenance_passes
    }

    /// Merges duplicate entries (log-sum-exp per key) and, if more than
    /// `q` distinct keys remain, evicts all keys below the q-th largest
    /// log-score.
    fn maintain(&mut self) {
        let mut log: Vec<Entry<K, OrderedF64>> = Vec::with_capacity(self.buf.len());
        self.buf.candidates_into(&mut log);
        let mut merged: HashMap<K, f64> = HashMap::with_capacity(log.len());
        for e in log.drain(..) {
            match merged.get_mut(&e.id) {
                Some(w) => *w = crate::score::logaddexp(*w, e.val.get()),
                None => {
                    merged.insert(e.id, e.val.get());
                }
            }
        }
        let mut survivors: Vec<Entry<K, OrderedF64>> = merged
            .into_iter()
            .map(|(k, w)| Entry::new(k, OrderedF64(w)))
            .collect();
        if survivors.len() > self.q {
            let cut = survivors.len() - self.q;
            nth_smallest(&mut survivors, cut);
            for evicted in survivors.drain(..cut) {
                self.cached.remove(&evicted.id);
            }
        }
        self.buf.reset();
        let kept: Vec<(K, OrderedF64)> = survivors.into_iter().map(|e| (e.id, e.val)).collect();
        self.buf.insert_batch(&kept);
        for (k, _) in kept {
            self.cached.insert(k, 1);
        }
        self.maintenance_passes += 1;
    }

    /// Registers a request for `key` in the cache index and returns
    /// `(hit, log entry to append)`.
    fn account(&mut self, key: K) -> (bool, (K, OrderedF64)) {
        self.time += 1;
        let w = OrderedF64(self.score.access(self.time));
        let hit = match self.cached.get_mut(&key) {
            Some(mult) => {
                *mult += 1;
                true
            }
            None => {
                self.cached.insert(key.clone(), 1);
                false
            }
        };
        (hit, (key, w))
    }

    /// Processes a span of requests, returning the number of hits.
    /// Semantically identical to calling [`Cache::request`] per key,
    /// but appends each between-maintenance run of entries to the log
    /// in one backend batch call.
    pub fn request_batch(&mut self, keys: &[K]) -> usize {
        let mut hits = 0;
        let mut scratch: Vec<(K, OrderedF64)> = Vec::new();
        let mut i = 0;
        while i < keys.len() {
            let take = (self.cap - self.buf.len()).min(keys.len() - i);
            scratch.clear();
            for key in &keys[i..i + take] {
                let (hit, entry) = self.account(key.clone());
                hits += usize::from(hit);
                scratch.push(entry);
            }
            self.buf.insert_batch(&scratch);
            i += take;
            if self.buf.len() == self.cap {
                self.maintain();
            }
        }
        hits
    }
}

impl<K: Clone + Hash + Eq, B: IntervalBackend<K, OrderedF64>> Cache<K> for QMaxLrfu<K, B> {
    fn request(&mut self, key: K) -> bool {
        let (hit, (key, w)) = self.account(key);
        self.buf.insert(key, w);
        if self.buf.len() == self.cap {
            self.maintain();
        }
        hit
    }

    fn len(&self) -> usize {
        self.cached.len()
    }

    fn capacity_bounds(&self) -> (usize, usize) {
        (self.q, self.cap)
    }

    fn reset(&mut self) {
        self.buf.reset();
        self.cached.clear();
        self.time = 0;
        self.maintenance_passes = 0;
    }

    fn name(&self) -> &'static str {
        "lrfu-qmax"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HeapLrfu;

    #[test]
    fn hits_and_misses() {
        let mut c = QMaxLrfu::new(4, 0.5, 0.75);
        assert!(!c.request("a"));
        assert!(c.request("a"));
        assert!(!c.request("b"));
        assert!(c.request("b"));
    }

    #[test]
    fn population_stays_within_bounds() {
        let mut c = QMaxLrfu::new(100, 0.5, 0.75);
        for k in 0..100_000u64 {
            c.request(k % 7919);
        }
        let (_, hi) = c.capacity_bounds();
        assert!(c.len() <= hi, "population {} above {hi}", c.len());
        assert!(
            c.len() >= 100,
            "population {} below q after warm-up",
            c.len()
        );
        assert!(c.maintenance_passes() > 0);
    }

    #[test]
    fn top_q_scores_are_never_evicted() {
        // Mirror the requests into an exact reference and verify that
        // the q highest-score keys of the reference are always cached.
        let q = 32;
        let c_decay = 0.75;
        let mut qmax = QMaxLrfu::new(q, 0.5, c_decay);
        let mut reference: HashMap<u64, f64> = HashMap::new();
        let ds = DecayScore::new(c_decay);
        let mut state = 5u64;
        for t in 1..=20_000u64 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let key = (state >> 33) % 200;
            qmax.request(key);
            let w = reference.entry(key).or_insert(f64::NEG_INFINITY);
            *w = ds.bump(*w, t);
            if t % 997 == 0 {
                let mut scored: Vec<(u64, f64)> = reference.iter().map(|(&k, &w)| (k, w)).collect();
                scored.sort_by(|a, b| b.1.total_cmp(&a.1));
                for &(k, _) in scored.iter().take(q) {
                    assert!(
                        qmax.cached.contains_key(&k),
                        "top-{q} key {k} evicted at t={t}"
                    );
                }
            }
        }
    }

    #[test]
    fn maintenance_is_amortized() {
        let q = 1000;
        let gamma = 0.5;
        let mut c = QMaxLrfu::new(q, gamma, 0.75);
        let n = 300_000u64;
        for k in 0..n {
            c.request(k % 50_000);
        }
        // One pass per (cap - q) requests at most (plus slack for the
        // duplicate-heavy regime where fewer keys survive the merge).
        let max_passes = n / ((c.capacity() - q) as u64) + 2;
        assert!(
            c.maintenance_passes() <= max_passes,
            "{} passes exceed {max_passes}",
            c.maintenance_passes()
        );
    }

    #[test]
    fn reset_restores_fresh_state() {
        let mut c = QMaxLrfu::new(16, 0.5, 0.8);
        for k in 0..5000u64 {
            c.request(k % 97);
        }
        assert!(c.maintenance_passes() > 0);
        c.reset();
        assert!(c.is_empty());
        assert_eq!(c.maintenance_passes(), 0);
        assert!(!c.request(1u64), "fresh cache must miss");
        assert!(c.request(1u64), "then hit");
    }

    #[test]
    fn capacity_bounds_reflect_gamma() {
        let c = QMaxLrfu::<u64>::new(100, 0.5, 0.75);
        assert_eq!(c.capacity_bounds(), (100, 150));
    }

    #[test]
    fn hit_ratio_close_to_exact_lrfu_on_skewed_trace() {
        let trace = qmax_traces::gen::arc_like(100_000, 10_000, 3);
        let q = 1_000;
        let exact = crate::hit_ratio(&mut HeapLrfu::new(q, 0.75), &trace);
        let ours = crate::hit_ratio(&mut QMaxLrfu::new(q, 0.25, 0.75), &trace);
        assert!(
            ours >= exact - 0.02,
            "q-MAX LRFU hit ratio {ours} well below exact {exact}"
        );
    }

    #[test]
    fn soa_backend_replays_identically() {
        // The log never self-compacts, so AoS and SoA backends see the
        // exact same entries and produce the exact same hit sequence.
        let trace = qmax_traces::gen::arc_like(60_000, 6_000, 13);
        let mut aos = QMaxLrfu::new(500, 0.5, 0.75);
        let mut soa = SoaQMaxLrfu::new_soa(500, 0.5, 0.75);
        for &k in &trace {
            assert_eq!(aos.request(k), soa.request(k));
        }
        assert_eq!(aos.len(), soa.len());
    }

    #[test]
    fn request_batch_matches_singletons() {
        let trace = qmax_traces::gen::arc_like(60_000, 6_000, 29);
        let mut one = QMaxLrfu::new(500, 0.5, 0.75);
        let mut batched = SoaQMaxLrfu::new_soa(500, 0.5, 0.75);
        let mut hits_one = 0usize;
        for &k in &trace {
            hits_one += usize::from(one.request(k));
        }
        let mut hits_batch = 0usize;
        for span in trace.chunks(777) {
            hits_batch += batched.request_batch(span);
        }
        assert_eq!(hits_one, hits_batch);
        assert_eq!(one.len(), batched.len());
    }
}
