//! Log-domain exponential-decay score arithmetic.
//!
//! Two merge paths are provided. [`logaddexp`] is the exact form:
//! `max + ln(1 + e^(min−max))` with libm's `exp`/`ln_1p` — the
//! reference every replay oracle uses. [`fast_logaddexp`] replaces the
//! `exp().ln_1p()` pair with a table-driven cubic-Hermite evaluation of
//! the softplus `ln(1 + e^x)` over the bounded argument range the
//! factored form guarantees (`x = min − max ≤ 0`), with the absolute
//! error bound [`FAST_LOGADDEXP_ABS_ERR`] (derivation on the constant;
//! proven against the exact form by `tests/proptest_score.rs`).
//! [`DecayScore`] selects between them per instance, so callers trade
//! a bounded score perturbation for roughly halving the per-request
//! merge cost.

use std::sync::OnceLock;

/// `ln(e^a + e^b)` computed without overflow: the larger argument is
/// factored out, leaving `max + ln(1 + e^(min−max))`.
///
/// Edge cases: `−∞` acts as the identity (`ln(e^a + 0) = a`), and
/// `+∞` dominates — including `logaddexp(+∞, +∞) = +∞`, which the
/// factored form alone would turn into `∞ − ∞ = NaN`.
#[inline]
pub fn logaddexp(a: f64, b: f64) -> f64 {
    if a == f64::NEG_INFINITY {
        return b;
    }
    if b == f64::NEG_INFINITY {
        return a;
    }
    let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
    if hi == f64::INFINITY {
        // ln(e^∞ + e^lo) = ∞ exactly; evaluating the factored form
        // with lo == hi == ∞ would compute (∞ − ∞).exp() = NaN.
        return hi;
    }
    hi + (lo - hi).exp().ln_1p()
}

/// Absolute error bound of [`fast_logaddexp`] against [`logaddexp`]:
/// `|fast − exact| ≤ 2·10⁻⁸` for all argument pairs.
///
/// Derivation. With `x = min − max ≤ 0` the fast path returns
/// `max + p(x)` where `p` approximates the softplus `f(x) = ln(1+e^x)`:
///
/// * `x < −20` (cutoff): returns `max` outright; the discarded term is
///   `f(x) ≤ f(−20) = ln(1 + e⁻²⁰) < 2.07·10⁻⁹`.
/// * `x ∈ [−20, 0]`: piecewise cubic Hermite interpolation of `f` on
///   256 uniform segments of width `h = 20/256 = 0.078125`. The
///   standard two-point Hermite bound gives
///   `|p − f| ≤ (h⁴/384)·max|f⁗|`; with `s = σ(x) ∈ (0, ½]`,
///   `f⁗ = s(1−s)(1−6s+6s²)` and `max|f⁗| = ⅛` (at `s = ½`), so the
///   interpolation error is `≤ 0.078125⁴/384/8 < 1.22·10⁻⁸`.
///
/// Both branches sit well under `2·10⁻⁸`; the slack absorbs the few
/// ulps of evaluation rounding (all intermediate quantities are `O(1)`).
pub const FAST_LOGADDEXP_ABS_ERR: f64 = 2e-8;

/// Cutoff below which the fast path returns `max` outright (see
/// [`FAST_LOGADDEXP_ABS_ERR`]).
const SOFTPLUS_CUT: f64 = -20.0;

/// Segment count of the softplus interpolation table over
/// `[SOFTPLUS_CUT, 0]`.
const SOFTPLUS_SEGS: usize = 256;

/// Segment width `20/256` — exactly representable (`5/64`), so knot
/// positions carry no placement rounding.
const SOFTPLUS_H: f64 = 0.078125;

/// Per-segment cubic coefficients `[f0, d0, c2, c3]` for
/// `p(u) = f0 + d0·u + c2·u² + c3·u³`, `u = x − x0` within the segment.
fn softplus_table() -> &'static [[f64; 4]; SOFTPLUS_SEGS] {
    static TABLE: OnceLock<Box<[[f64; 4]; SOFTPLUS_SEGS]>> = OnceLock::new();
    TABLE.get_or_init(|| {
        let softplus = |x: f64| x.exp().ln_1p();
        let sigmoid = |x: f64| {
            let e = x.exp();
            e / (1.0 + e)
        };
        let mut t = Box::new([[0.0f64; 4]; SOFTPLUS_SEGS]);
        for (i, seg) in t.iter_mut().enumerate() {
            let x0 = SOFTPLUS_CUT + i as f64 * SOFTPLUS_H;
            let x1 = x0 + SOFTPLUS_H;
            let (f0, f1) = (softplus(x0), softplus(x1));
            let (d0, d1) = (sigmoid(x0), sigmoid(x1));
            let h = SOFTPLUS_H;
            let slope = (f1 - f0) / h;
            let c2 = (3.0 * slope - 2.0 * d0 - d1) / h;
            let c3 = (d0 + d1 - 2.0 * slope) / (h * h);
            *seg = [f0, d0, c2, c3];
        }
        t
    })
}

/// Table-driven `ln(1 + e^x)` for `x ≤ 0`; error per
/// [`FAST_LOGADDEXP_ABS_ERR`]. Callers guarantee `x ≤ 0` and finite.
#[inline]
fn softplus_fast(x: f64) -> f64 {
    debug_assert!(x <= 0.0);
    if x < SOFTPLUS_CUT {
        return 0.0;
    }
    let t = (x - SOFTPLUS_CUT) * (SOFTPLUS_SEGS as f64 / -SOFTPLUS_CUT);
    let i = (t as usize).min(SOFTPLUS_SEGS - 1);
    let u = x - (SOFTPLUS_CUT + i as f64 * SOFTPLUS_H);
    let [f0, d0, c2, c3] = softplus_table()[i];
    f0 + u * (d0 + u * (c2 + u * c3))
}

/// Bounded-error `ln(e^a + e^b)`: identical edge-case handling to
/// [`logaddexp`], with the softplus term evaluated by the interpolation
/// table instead of `exp`/`ln_1p`. `|fast − exact|` never exceeds
/// [`FAST_LOGADDEXP_ABS_ERR`].
#[inline]
pub fn fast_logaddexp(a: f64, b: f64) -> f64 {
    if a == f64::NEG_INFINITY {
        return b;
    }
    if b == f64::NEG_INFINITY {
        return a;
    }
    let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
    if hi == f64::INFINITY {
        return hi;
    }
    hi + softplus_fast(lo - hi)
}

/// Exponential-decay score bookkeeping shared by the LRFU variants.
///
/// With decay parameter `c ∈ (0, 1)` and `λ = −ln c`, the *stored*
/// log-score of an item accessed at times `i₁, …, iₖ` is
/// `w = ln Σ exp(λ·iⱼ)`; its LRFU score at time `t` is `exp(w − λt)`.
/// Ordering by `w` therefore orders by score, and a fresh access at
/// time `t` folds in as `w ← logaddexp(w, λt)`.
///
/// The `fast` knob routes [`bump`](DecayScore::bump) through
/// [`fast_logaddexp`]: each merge then perturbs `w` by at most
/// [`FAST_LOGADDEXP_ABS_ERR`] — far below the score gaps any realistic
/// request stream produces, so rank decisions are unchanged at default
/// tolerance (pinned by the replay property in
/// `tests/proptest_score.rs`).
#[derive(Debug, Clone, Copy)]
pub struct DecayScore {
    lambda: f64,
    fast: bool,
}

impl DecayScore {
    /// Creates score bookkeeping for decay parameter `c`, using the
    /// exact merge.
    ///
    /// # Panics
    ///
    /// Panics if `c` is not in `(0, 1)`.
    pub fn new(c: f64) -> Self {
        assert!(c > 0.0 && c < 1.0, "decay parameter must be in (0, 1)");
        DecayScore {
            lambda: -c.ln(),
            fast: false,
        }
    }

    /// Creates score bookkeeping for decay parameter `c` with the
    /// bounded-error fast merge enabled.
    ///
    /// # Panics
    ///
    /// Panics if `c` is not in `(0, 1)`.
    pub fn new_fast(c: f64) -> Self {
        DecayScore::new(c).with_fast_merge(true)
    }

    /// Selects the merge path: `true` routes every
    /// [`bump`](DecayScore::bump) through [`fast_logaddexp`].
    pub fn with_fast_merge(mut self, fast: bool) -> Self {
        self.fast = fast;
        self
    }

    /// Whether bumps use the bounded-error fast merge.
    #[inline]
    pub fn is_fast(&self) -> bool {
        self.fast
    }

    /// The log-contribution of a single access at time `t`.
    #[inline]
    pub fn access(&self, t: u64) -> f64 {
        self.lambda * t as f64
    }

    /// Folds an access at time `t` into an existing log-score.
    #[inline]
    pub fn bump(&self, w: f64, t: u64) -> f64 {
        self.merge(w, self.access(t))
    }

    /// Merges two log-scores through the selected path.
    #[inline]
    pub fn merge(&self, a: f64, b: f64) -> f64 {
        if self.fast {
            fast_logaddexp(a, b)
        } else {
            logaddexp(a, b)
        }
    }

    /// The decayed absolute score at time `t` of a stored log-score
    /// (only used for reporting; comparisons use `w` directly).
    #[inline]
    pub fn decayed(&self, w: f64, t: u64) -> f64 {
        (w - self.lambda * t as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logaddexp_matches_direct_computation() {
        for (a, b) in [(0.0f64, 0.0f64), (1.0, 2.0), (-3.0, 4.0), (10.0, 10.0)] {
            let direct = (a.exp() + b.exp()).ln();
            assert!((logaddexp(a, b) - direct).abs() < 1e-12, "({a}, {b})");
        }
    }

    #[test]
    fn logaddexp_is_overflow_safe() {
        let big = 1e6;
        let r = logaddexp(big, big);
        assert!((r - (big + 2f64.ln())).abs() < 1e-6);
        assert!(r.is_finite());
        assert_eq!(logaddexp(f64::NEG_INFINITY, 5.0), 5.0);
        assert_eq!(logaddexp(5.0, f64::NEG_INFINITY), 5.0);
    }

    /// The `+∞` edges from the issue: the factored form used to compute
    /// `(∞ − ∞).exp()` = NaN on equal infinite arguments.
    #[test]
    fn logaddexp_infinity_edges() {
        for f in [logaddexp as fn(f64, f64) -> f64, fast_logaddexp] {
            assert_eq!(f(f64::INFINITY, f64::INFINITY), f64::INFINITY);
            assert_eq!(f(f64::INFINITY, 5.0), f64::INFINITY);
            assert_eq!(f(5.0, f64::INFINITY), f64::INFINITY);
            assert_eq!(f(f64::INFINITY, f64::NEG_INFINITY), f64::INFINITY);
            assert_eq!(f(f64::NEG_INFINITY, f64::INFINITY), f64::INFINITY);
            assert_eq!(f(f64::NEG_INFINITY, f64::NEG_INFINITY), f64::NEG_INFINITY);
        }
    }

    /// Equal finite arguments are the other half of the `a == b` edge:
    /// the answer is exactly `a + ln 2`, not `a`.
    #[test]
    fn logaddexp_equal_args_add_ln2() {
        for a in [-1e6, -37.0, -1.0, 0.0, 1.0, 42.5, 1e6] {
            assert_eq!(logaddexp(a, a), a + std::f64::consts::LN_2, "exact {a}");
            assert!(
                (fast_logaddexp(a, a) - (a + std::f64::consts::LN_2)).abs()
                    <= FAST_LOGADDEXP_ABS_ERR,
                "fast {a}"
            );
        }
    }

    #[test]
    fn fast_merge_meets_documented_bound_on_a_grid() {
        // Dense sweep of the softplus argument, crossing every table
        // segment several times plus the cutoff; the proptest in
        // tests/proptest_score.rs covers the randomized + subnormal
        // cases, this pins a deterministic grid into the unit suite.
        let mut worst = 0.0f64;
        for i in 0..200_000 {
            let x = -25.0 * (i as f64) / 200_000.0;
            let exact = logaddexp(0.0, x);
            let fast = fast_logaddexp(0.0, x);
            worst = worst.max((fast - exact).abs());
        }
        assert!(
            worst <= FAST_LOGADDEXP_ABS_ERR,
            "worst grid error {worst:e} exceeds bound"
        );
    }

    #[test]
    fn fast_merge_is_symmetric_and_ordered() {
        let ds = DecayScore::new_fast(0.5);
        assert!(ds.is_fast());
        for (a, b) in [(0.0, -3.0), (10.0, 9.5), (-7.0, -7.0), (5.0, -40.0)] {
            assert_eq!(fast_logaddexp(a, b), fast_logaddexp(b, a));
            // The merge dominates both inputs.
            assert!(fast_logaddexp(a, b) >= a.max(b));
        }
    }

    #[test]
    fn scores_match_naive_lrfu() {
        // Naive: score at time t = sum over accesses of c^(t-i).
        let c = 0.75f64;
        let ds = DecayScore::new(c);
        let accesses = [3u64, 7, 8, 15];
        let t = 20u64;
        let naive: f64 = accesses.iter().map(|&i| c.powi((t - i) as i32)).sum();
        let mut w = f64::NEG_INFINITY;
        for &i in &accesses {
            w = ds.bump(w, i);
        }
        assert!((ds.decayed(w, t) - naive).abs() < 1e-9);
    }

    #[test]
    fn fast_scores_match_naive_lrfu_within_bound() {
        let c = 0.75f64;
        let ds = DecayScore::new_fast(c);
        let accesses = [3u64, 7, 8, 15];
        let mut w = f64::NEG_INFINITY;
        let mut exact = f64::NEG_INFINITY;
        for &i in &accesses {
            w = ds.bump(w, i);
            exact = logaddexp(exact, ds.access(i));
        }
        // Per-merge errors accumulate at most linearly.
        assert!((w - exact).abs() <= accesses.len() as f64 * FAST_LOGADDEXP_ABS_ERR);
    }

    #[test]
    fn ordering_by_w_is_ordering_by_score() {
        let ds = DecayScore::new(0.9);
        // Item A: one recent access; item B: two ancient accesses.
        let wa = ds.access(100);
        let mut wb = ds.access(1);
        wb = ds.bump(wb, 2);
        let t = 101;
        assert_eq!(wa > wb, ds.decayed(wa, t) > ds.decayed(wb, t));
    }

    #[test]
    #[should_panic(expected = "decay parameter")]
    fn c_of_one_panics() {
        let _ = DecayScore::new(1.0);
    }

    #[test]
    fn stays_finite_over_very_long_streams() {
        // 10^8 requests with c = 0.75: raw weights would be c^-1e8 ≈
        // 10^12M — far beyond f64 — but log-domain arithmetic stays
        // finite and keeps ordering.
        let ds = DecayScore::new(0.75);
        let old = ds.access(10);
        let recent = ds.access(100_000_000);
        assert!(old.is_finite() && recent.is_finite());
        assert!(recent > old);
        // Bumping an ancient score with a fresh access is dominated by
        // the fresh access, as the decay model requires.
        let bumped = ds.bump(old, 100_000_000);
        assert!(bumped.is_finite());
        assert!(bumped >= recent);
        assert!(
            bumped - recent < 1e-6,
            "ancient history should be negligible"
        );
    }

    #[test]
    fn repeated_bumps_equal_batch_logsumexp() {
        let ds = DecayScore::new(0.9);
        let times = [1u64, 5, 9, 10, 11];
        let mut incremental = f64::NEG_INFINITY;
        for &t in &times {
            incremental = ds.bump(incremental, t);
        }
        let direct: f64 = times
            .iter()
            .map(|&t| (ds.access(t)).exp())
            .sum::<f64>()
            .ln();
        assert!((incremental - direct).abs() < 1e-9);
    }
}
