//! Log-domain exponential-decay score arithmetic.

/// `ln(e^a + e^b)` computed without overflow: the larger argument is
/// factored out, leaving `max + ln(1 + e^(min−max))`.
#[inline]
pub fn logaddexp(a: f64, b: f64) -> f64 {
    if a == f64::NEG_INFINITY {
        return b;
    }
    if b == f64::NEG_INFINITY {
        return a;
    }
    let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
    hi + (lo - hi).exp().ln_1p()
}

/// Exponential-decay score bookkeeping shared by the LRFU variants.
///
/// With decay parameter `c ∈ (0, 1)` and `λ = −ln c`, the *stored*
/// log-score of an item accessed at times `i₁, …, iₖ` is
/// `w = ln Σ exp(λ·iⱼ)`; its LRFU score at time `t` is `exp(w − λt)`.
/// Ordering by `w` therefore orders by score, and a fresh access at
/// time `t` folds in as `w ← logaddexp(w, λt)`.
#[derive(Debug, Clone, Copy)]
pub struct DecayScore {
    lambda: f64,
}

impl DecayScore {
    /// Creates score bookkeeping for decay parameter `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is not in `(0, 1)`.
    pub fn new(c: f64) -> Self {
        assert!(c > 0.0 && c < 1.0, "decay parameter must be in (0, 1)");
        DecayScore { lambda: -c.ln() }
    }

    /// The log-contribution of a single access at time `t`.
    #[inline]
    pub fn access(&self, t: u64) -> f64 {
        self.lambda * t as f64
    }

    /// Folds an access at time `t` into an existing log-score.
    #[inline]
    pub fn bump(&self, w: f64, t: u64) -> f64 {
        logaddexp(w, self.access(t))
    }

    /// The decayed absolute score at time `t` of a stored log-score
    /// (only used for reporting; comparisons use `w` directly).
    #[inline]
    pub fn decayed(&self, w: f64, t: u64) -> f64 {
        (w - self.lambda * t as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logaddexp_matches_direct_computation() {
        for (a, b) in [(0.0f64, 0.0f64), (1.0, 2.0), (-3.0, 4.0), (10.0, 10.0)] {
            let direct = (a.exp() + b.exp()).ln();
            assert!((logaddexp(a, b) - direct).abs() < 1e-12, "({a}, {b})");
        }
    }

    #[test]
    fn logaddexp_is_overflow_safe() {
        let big = 1e6;
        let r = logaddexp(big, big);
        assert!((r - (big + 2f64.ln())).abs() < 1e-6);
        assert!(r.is_finite());
        assert_eq!(logaddexp(f64::NEG_INFINITY, 5.0), 5.0);
        assert_eq!(logaddexp(5.0, f64::NEG_INFINITY), 5.0);
    }

    #[test]
    fn scores_match_naive_lrfu() {
        // Naive: score at time t = sum over accesses of c^(t-i).
        let c = 0.75f64;
        let ds = DecayScore::new(c);
        let accesses = [3u64, 7, 8, 15];
        let t = 20u64;
        let naive: f64 = accesses.iter().map(|&i| c.powi((t - i) as i32)).sum();
        let mut w = f64::NEG_INFINITY;
        for &i in &accesses {
            w = ds.bump(w, i);
        }
        assert!((ds.decayed(w, t) - naive).abs() < 1e-9);
    }

    #[test]
    fn ordering_by_w_is_ordering_by_score() {
        let ds = DecayScore::new(0.9);
        // Item A: one recent access; item B: two ancient accesses.
        let wa = ds.access(100);
        let mut wb = ds.access(1);
        wb = ds.bump(wb, 2);
        let t = 101;
        assert_eq!(wa > wb, ds.decayed(wa, t) > ds.decayed(wb, t));
    }

    #[test]
    #[should_panic(expected = "decay parameter")]
    fn c_of_one_panics() {
        let _ = DecayScore::new(1.0);
    }

    #[test]
    fn stays_finite_over_very_long_streams() {
        // 10^8 requests with c = 0.75: raw weights would be c^-1e8 ≈
        // 10^12M — far beyond f64 — but log-domain arithmetic stays
        // finite and keeps ordering.
        let ds = DecayScore::new(0.75);
        let old = ds.access(10);
        let recent = ds.access(100_000_000);
        assert!(old.is_finite() && recent.is_finite());
        assert!(recent > old);
        // Bumping an ancient score with a fresh access is dominated by
        // the fresh access, as the decay model requires.
        let bumped = ds.bump(old, 100_000_000);
        assert!(bumped.is_finite());
        assert!(bumped >= recent);
        assert!(
            bumped - recent < 1e-6,
            "ancient history should be negligible"
        );
    }

    #[test]
    fn repeated_bumps_equal_batch_logsumexp() {
        let ds = DecayScore::new(0.9);
        let times = [1u64, 5, 9, 10, 11];
        let mut incremental = f64::NEG_INFINITY;
        for &t in &times {
            incremental = ds.bump(incremental, t);
        }
        let direct: f64 = times
            .iter()
            .map(|&t| (ds.access(t)).exp())
            .sum::<f64>()
            .ln();
        assert!((incremental - direct).abs() < 1e-9);
    }
}
