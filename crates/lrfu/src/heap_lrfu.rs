//! Exact LRFU on an indexed min-heap (`O(log q)` per request).

use crate::score::DecayScore;
use crate::Cache;
use qmax_core::{IndexedMinHeap, OrderedF64};
use std::hash::Hash;

/// The classical LRFU implementation: an indexed min-heap keyed by
/// log-score supports peek-min eviction and in-place score bumps in
/// `O(log q)`.
///
/// This is the stronger of the two baselines (the paper's C++ STL heap
/// had no sift operation and degenerated to `O(q)`; see
/// [`crate::ScanLrfu`] for that behaviour).
#[derive(Debug, Clone)]
pub struct HeapLrfu<K: Clone + Hash + Eq> {
    q: usize,
    score: DecayScore,
    heap: IndexedMinHeap<K, OrderedF64>,
    time: u64,
}

impl<K: Clone + Hash + Eq> HeapLrfu<K> {
    /// Creates an LRFU cache of `q` entries with decay parameter `c`.
    ///
    /// # Panics
    ///
    /// Panics if `q == 0` or `c` outside `(0, 1)`.
    pub fn new(q: usize, c: f64) -> Self {
        assert!(q > 0, "q must be positive");
        HeapLrfu {
            q,
            score: DecayScore::new(c),
            heap: IndexedMinHeap::new(),
            time: 0,
        }
    }
}

impl<K: Clone + Hash + Eq> Cache<K> for HeapLrfu<K> {
    fn request(&mut self, key: K) -> bool {
        self.time += 1;
        let t = self.time;
        if let Some(&OrderedF64(w)) = self.heap.get(&key) {
            self.heap.upsert(key, OrderedF64(self.score.bump(w, t)));
            return true;
        }
        if self.heap.len() == self.q {
            self.heap.pop_min();
        }
        self.heap.upsert(key, OrderedF64(self.score.access(t)));
        false
    }

    fn len(&self) -> usize {
        self.heap.len()
    }

    fn capacity_bounds(&self) -> (usize, usize) {
        (self.q, self.q)
    }

    fn reset(&mut self) {
        self.heap.clear();
        self.time = 0;
    }

    fn name(&self) -> &'static str {
        "lrfu-heap"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_and_misses() {
        let mut c = HeapLrfu::new(2, 0.75);
        assert!(!c.request("a"));
        assert!(c.request("a"));
        assert!(!c.request("b"));
        assert!(c.request("b"));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn evicts_lowest_score() {
        let mut c = HeapLrfu::new(2, 0.5);
        // "a" accessed many times early, "b" once; inserting "x" must
        // evict whichever has the lower decayed score — with c = 0.5,
        // recency dominates, so "a" (stale) goes.
        for _ in 0..5 {
            c.request("a");
        }
        for _ in 0..20 {
            c.request("b");
        }
        c.request("x");
        assert!(c.request("b"), "recently hot key evicted");
        assert!(!c.request("a"), "stale key survived");
    }

    #[test]
    fn capacity_is_respected() {
        let mut c = HeapLrfu::new(8, 0.9);
        for k in 0..1000u64 {
            c.request(k);
        }
        assert_eq!(c.len(), 8);
    }

    #[test]
    fn reset_clears() {
        let mut c = HeapLrfu::new(4, 0.8);
        c.request(1u64);
        c.reset();
        assert!(c.is_empty());
        assert!(!c.request(1u64));
    }
}
