//! `Option<T>` strategies, mirroring `proptest::option`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// The strategy returned by [`of`].
#[derive(Debug, Clone, Copy)]
pub struct OptionStrategy<S>(S);

/// Wraps `inner` so each draw yields `None` half the time and
/// `Some(inner draw)` otherwise, like `proptest::option::of`.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy(inner)
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.next_u64() & 1 == 0 {
            None
        } else {
            Some(self.0.generate(rng))
        }
    }
}
