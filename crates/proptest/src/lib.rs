//! Offline stand-in for the [proptest](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment for this workspace has no access to a crates.io
//! registry, so this crate re-implements the subset of proptest's API the
//! workspace's property tests use: the [`proptest!`] macro, range /
//! `any::<T>()` / tuple / `prop::collection::vec` strategies,
//! [`ProptestConfig`] case counts, and the `prop_assert*` macros.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case panics with its case index and
//!   seed; re-running is fully deterministic, so the failure reproduces
//!   exactly without a persistence file.
//! * **No regression persistence.** `*.proptest-regressions` files are
//!   neither read nor written.
//! * Generation is a simple deterministic splitmix64 stream seeded from
//!   the test name and case index, so every `cargo test` run explores
//!   the same cases (override the count with `PROPTEST_CASES`).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod sample;
pub mod strategy;
pub mod test_runner;

pub use test_runner::ProptestConfig;

/// The prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Mirror of the `proptest::prelude::prop` module shorthand.
    pub mod prop {
        pub use crate::arbitrary;
        pub use crate::collection;
        pub use crate::option;
        pub use crate::sample;
    }
}

/// Picks one of several strategies per draw, mirroring
/// `proptest::prop_oneof!`. Arms are either plain strategies (equal
/// weights) or `weight => strategy` pairs.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strategy),+]
    };
}

/// Asserts a condition inside a [`proptest!`] test body.
///
/// Unlike real proptest (which records the failure and shrinks), this
/// panics immediately; the harness prints the failing case's seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a [`proptest!`] test body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a [`proptest!`] test body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// item becomes a `#[test]` that samples its strategies for the
/// configured number of cases and runs the body on each sample.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal item-by-item expansion of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let __cases = __cfg.effective_cases();
            for __case in 0..__cases {
                let __seed = $crate::test_runner::case_seed(stringify!($name), __case);
                let mut __rng = $crate::test_runner::TestRng::from_seed(__seed);
                let ($($arg,)+) = (
                    $( $crate::strategy::Strategy::generate(&($strat), &mut __rng), )+
                );
                let __guard = $crate::test_runner::CasePanicContext::new(
                    stringify!($name), __case, __seed,
                );
                $body
                __guard.disarm();
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}
