//! Value-generation strategies.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Real proptest separates strategies from value trees to support
/// shrinking; this offline stand-in generates final values directly.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`, mirroring
    /// `proptest::strategy::Strategy::prop_map`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { source: self, f }
    }

    /// Erases the strategy type behind a `Box`, mirroring
    /// `proptest::strategy::Strategy::boxed`. Used by [`crate::prop_oneof!`]
    /// so arms of different strategy types can share one union.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// The combinator returned by [`Strategy::prop_map`].
#[derive(Debug, Clone, Copy)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.source.generate(rng))
    }
}

/// A heap-allocated, type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// A weighted union of strategies over one value type: each draw picks
/// an arm with probability proportional to its weight, then delegates.
/// Built by [`crate::prop_oneof!`].
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Builds a union from `(weight, strategy)` arms.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty or all weights are zero.
    pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive weight");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.next_below(self.total);
        for (w, arm) in &self.arms {
            if pick < *w as u64 {
                return arm.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weighted pick below total")
    }
}

/// A strategy producing one fixed value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

macro_rules! impl_uint_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.next_below(span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.next_below(span + 1) as $t
            }
        }
    )*};
}

impl_uint_range!(u8, u16, u32, u64, usize);

macro_rules! impl_int_range {
    ($($t:ty => $u:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(rng.next_below(span) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.next_below(span + 1) as $t)
            }
        }
    )*};
}

impl_int_range!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let u = rng.next_unit_f64() as $t;
                self.start + (self.end - self.start) * u
            }
        }
    )*};
}

impl_float_range!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}
