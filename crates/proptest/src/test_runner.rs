//! Deterministic case generation and failure reporting.

/// Per-suite configuration; only the fields this workspace uses.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// The configured case count, overridable with the `PROPTEST_CASES`
    /// environment variable (mirroring real proptest).
    pub fn effective_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES") {
            Ok(v) => v.parse().unwrap_or(self.cases),
            Err(_) => self.cases,
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic splitmix64 generator driving strategy sampling.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from an explicit seed.
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be positive.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // 128-bit multiply-shift (Lemire) keeps bias negligible.
        (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Stable seed for `(test name, case index)`: FNV-1a over the name mixed
/// with the index, so each test explores its own deterministic stream.
pub fn case_seed(test_name: &str, case: u32) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Prints which case was running if the test body panics, so failures
/// are reproducible without shrinking or persistence files.
pub struct CasePanicContext {
    armed: bool,
    test_name: &'static str,
    case: u32,
    seed: u64,
}

impl CasePanicContext {
    /// Arms the context for one case execution.
    pub fn new(test_name: &'static str, case: u32, seed: u64) -> Self {
        CasePanicContext {
            armed: true,
            test_name,
            case,
            seed,
        }
    }

    /// Marks the case as having completed successfully.
    pub fn disarm(mut self) {
        self.armed = false;
    }
}

impl Drop for CasePanicContext {
    fn drop(&mut self) {
        if self.armed {
            eprintln!(
                "proptest case failed: test `{}`, case {} (seed {:#x}); \
                 re-running the test reproduces it deterministically",
                self.test_name, self.case, self.seed
            );
        }
    }
}
