//! Collection-relative sampling, mirroring `proptest::sample`.

use crate::arbitrary::Arbitrary;
use crate::test_runner::TestRng;

/// A length-agnostic index: generate one with `any::<Index>()` and
/// resolve it against a concrete collection with [`Index::index`].
///
/// This mirrors `proptest::sample::Index`, which lets a test draw "some
/// position" before it knows the collection's length.
#[derive(Debug, Clone, Copy)]
pub struct Index(u64);

impl Index {
    /// Resolves this index against a collection of length `len`.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "cannot index an empty collection");
        (self.0 % len as u64) as usize
    }
}

impl Arbitrary for Index {
    fn arbitrary(rng: &mut TestRng) -> Self {
        Index(rng.next_u64())
    }
}
