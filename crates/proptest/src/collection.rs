//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Inclusive-exclusive bounds on a generated collection's length.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        if self.hi <= self.lo + 1 {
            return self.lo;
        }
        self.lo + rng.next_below((self.hi - self.lo) as u64) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: r.end() + 1,
        }
    }
}

/// Strategy for `Vec<S::Value>` with lengths drawn from a [`SizeRange`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.sample(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// A strategy generating vectors of `element` values, mirroring
/// `proptest::collection::vec`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
