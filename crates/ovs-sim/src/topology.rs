//! A small multi-switch topology: the deployment the network-wide
//! measurement algorithms actually run in.
//!
//! The routing-oblivious heavy-hitter scheme's whole point is that
//! measurement points can be attached to *any* subset of switches, with
//! packets crossing several of them, and the merged sample still counts
//! every packet once. This module builds a two-tier leaf–spine fabric
//! of [`Switch`] datapaths, routes packets host→leaf→spine→leaf, and
//! drives a per-switch [`MeasurementHook`] at every hop — so the
//! integration tests and examples can exercise exactly the paper's
//! Section 2.6 / 4.3.4 setting on a faithful substrate.

use crate::datapath::Switch;
use crate::MeasurementHook;
use qmax_traces::Packet;

/// A leaf–spine fabric: `leaves` edge switches fully meshed to
/// `spines` core switches. Hosts hash onto leaves by source address;
/// a packet whose source and destination land on different leaves
/// crosses `ingress leaf → spine → egress leaf` (three observation
/// points), intra-leaf traffic only its leaf.
#[derive(Debug)]
pub struct LeafSpine {
    leaves: Vec<Switch>,
    spines: Vec<Switch>,
    /// Per-switch forwarded-packet counters, `[leaves..., spines...]`.
    hops: Vec<u64>,
}

/// The switches a packet visited, in order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Path {
    /// Ingress leaf index.
    pub ingress: usize,
    /// Spine index (`None` for intra-leaf traffic).
    pub spine: Option<usize>,
    /// Egress leaf index (equals `ingress` for intra-leaf traffic).
    pub egress: usize,
}

impl LeafSpine {
    /// Builds a fabric of `leaves` × `spines` switches.
    ///
    /// # Panics
    ///
    /// Panics if either count is zero.
    pub fn new(leaves: usize, spines: usize) -> Self {
        assert!(
            leaves > 0 && spines > 0,
            "need at least one leaf and one spine"
        );
        LeafSpine {
            leaves: (0..leaves).map(|_| Switch::new(48)).collect(),
            spines: (0..spines).map(|_| Switch::new(48)).collect(),
            hops: vec![0; leaves + spines],
        }
    }

    /// Number of leaf switches.
    pub fn leaves(&self) -> usize {
        self.leaves.len()
    }

    /// Number of spine switches.
    pub fn spines(&self) -> usize {
        self.spines.len()
    }

    fn leaf_of(&self, addr: u32) -> usize {
        (qmax_traces::hash::mix64(addr as u64) % self.leaves.len() as u64) as usize
    }

    fn spine_of(&self, pkt: &Packet) -> usize {
        // ECMP: per-flow spine choice, like real fabrics hash 5-tuples.
        (pkt.flow().as_u64() % self.spines.len() as u64) as usize
    }

    /// Routes one packet through the fabric. Every traversed switch
    /// processes the packet through its datapath, and the hook attached
    /// to that switch index (via `hooks`) observes it.
    ///
    /// `hooks[i]` corresponds to leaf `i` for `i < leaves`, spine
    /// `i - leaves` otherwise; pass fewer hooks to instrument only a
    /// subset of switches (the routing-oblivious scheme tolerates
    /// partial deployment).
    pub fn route<H: MeasurementHook>(&mut self, pkt: &Packet, hooks: &mut [H]) -> Path {
        let ingress = self.leaf_of(pkt.src_ip);
        let egress = self.leaf_of(pkt.dst_ip);
        let flow = pkt.flow();
        let id = pkt.packet_id();
        self.leaves[ingress].process(pkt);
        self.hops[ingress] += 1;
        if let Some(h) = hooks.get_mut(ingress) {
            h.on_packet(flow, id, pkt.len);
        }
        if ingress == egress {
            return Path {
                ingress,
                spine: None,
                egress,
            };
        }
        let spine = self.spine_of(pkt);
        self.spines[spine].process(pkt);
        self.hops[self.leaves.len() + spine] += 1;
        if let Some(h) = hooks.get_mut(self.leaves.len() + spine) {
            h.on_packet(flow, id, pkt.len);
        }
        self.leaves[egress].process(pkt);
        self.hops[egress] += 1;
        if let Some(h) = hooks.get_mut(egress) {
            h.on_packet(flow, id, pkt.len);
        }
        Path {
            ingress,
            spine: Some(spine),
            egress,
        }
    }

    /// Packets forwarded per switch (`[leaves..., spines...]`).
    pub fn hop_counts(&self) -> &[u64] {
        &self.hops
    }

    /// Total switch traversals (≥ packets routed; each inter-leaf
    /// packet counts three times).
    pub fn total_hops(&self) -> u64 {
        self.hops.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NullHook;
    use qmax_traces::gen::caida_like;

    #[test]
    fn routing_is_deterministic_and_consistent() {
        let mut fab = LeafSpine::new(4, 2);
        let pkts: Vec<Packet> = caida_like(2000, 1).collect();
        let mut hooks: Vec<NullHook> = vec![NullHook; 6];
        let paths: Vec<Path> = pkts.iter().map(|p| fab.route(p, &mut hooks)).collect();
        let mut fab2 = LeafSpine::new(4, 2);
        let paths2: Vec<Path> = pkts.iter().map(|p| fab2.route(p, &mut hooks)).collect();
        assert_eq!(paths, paths2);
        for (p, path) in pkts.iter().zip(&paths) {
            // Same flow, same path (ECMP is per-flow).
            assert_eq!(path.ingress, fab.leaf_of(p.src_ip));
            assert_eq!(path.egress, fab.leaf_of(p.dst_ip));
            if path.ingress == path.egress {
                assert_eq!(path.spine, None);
            } else {
                assert!(path.spine.is_some());
            }
        }
    }

    #[test]
    fn hop_accounting_matches_paths() {
        let mut fab = LeafSpine::new(3, 2);
        let pkts: Vec<Packet> = caida_like(5000, 2).collect();
        let mut hooks: Vec<NullHook> = vec![NullHook; 5];
        let mut expected_hops = 0u64;
        for p in &pkts {
            let path = fab.route(p, &mut hooks);
            expected_hops += if path.spine.is_some() { 3 } else { 1 };
        }
        assert_eq!(fab.total_hops(), expected_hops);
        // Every leaf should carry some traffic under hashed placement.
        for (i, &h) in fab.hop_counts().iter().take(3).enumerate() {
            assert!(h > 0, "leaf {i} carried nothing");
        }
    }

    #[test]
    fn multi_observation_gives_duplicate_sightings() {
        // An inter-leaf packet is observed by up to three hooks; a
        // counting hook sees more observations than packets.
        #[derive(Default)]
        struct CountHook(u64);
        impl MeasurementHook for CountHook {
            fn on_packet(&mut self, _f: qmax_traces::FlowKey, _id: u64, _l: u16) {
                self.0 += 1;
            }
        }
        let mut fab = LeafSpine::new(4, 2);
        let pkts: Vec<Packet> = caida_like(3000, 3).collect();
        let mut hooks: Vec<CountHook> = (0..6).map(|_| CountHook::default()).collect();
        for p in &pkts {
            fab.route(p, &mut hooks);
        }
        let sightings: u64 = hooks.iter().map(|h| h.0).sum();
        assert!(
            sightings > pkts.len() as u64,
            "no duplicate observation: {sightings} sightings for {} packets",
            pkts.len()
        );
        assert_eq!(sightings, fab.total_hops());
    }
}
