//! Line-rate throughput evaluation: how fast can the switch + hook
//! forward, and does it keep up with the wire?

use crate::datapath::Switch;
use crate::MeasurementHook;
use qmax_traces::{FlowKey, Packet};
use std::time::Instant;

/// Per-packet Ethernet wire overhead: preamble (8B) + inter-frame gap
/// (12B). A 64-byte frame therefore occupies 84 byte-times on the wire.
pub const WIRE_OVERHEAD_BYTES: u32 = 20;

/// A line-rate offered load: link speed plus frame size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LineRate {
    /// Link speed in gigabits per second (10.0 and 40.0 in the paper).
    pub gbps: f64,
    /// Frame size in bytes, excluding wire overhead (64 for the
    /// stress tests, the trace's mean size for the 40G experiments).
    pub frame_bytes: u32,
}

impl LineRate {
    /// The offered packet rate in packets per second.
    pub fn offered_pps(&self) -> f64 {
        self.gbps * 1e9 / (8.0 * (self.frame_bytes + WIRE_OVERHEAD_BYTES) as f64)
    }

    /// The per-packet time budget in nanoseconds at line rate.
    pub fn budget_ns(&self) -> f64 {
        1e9 / self.offered_pps()
    }
}

/// Result of a throughput evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThroughputReport {
    /// Offered load in millions of packets per second.
    pub offered_mpps: f64,
    /// Achieved forwarding rate in millions of packets per second.
    pub achieved_mpps: f64,
    /// Achieved throughput in gigabits per second (including wire
    /// overhead, i.e. relative to the link's nominal speed).
    pub achieved_gbps: f64,
    /// Measured datapath + hook cost per packet in nanoseconds.
    pub cost_ns_per_packet: f64,
    /// Fraction of the line-rate budget consumed (1.0 = exactly at
    /// line rate; above 1.0 the switch drops).
    pub budget_utilization: f64,
}

/// A hook that records nothing: the "vanilla OVS" baseline of
/// Figures 12–17.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullHook;

impl MeasurementHook for NullHook {
    #[inline]
    fn on_packet(&mut self, _flow: FlowKey, _packet_id: u64, _len: u16) {}

    fn name(&self) -> &'static str {
        "vanilla"
    }
}

/// Runs `packets` through `switch` with `hook` attached, measures the
/// real per-packet processing cost, and reports the throughput the
/// combination would achieve against the offered `rate`.
///
/// The model: a PMD thread has `rate.budget_ns()` per packet; if the
/// measured cost exceeds the budget, throughput degrades
/// proportionally (`achieved = offered * budget / cost`) — the standard
/// receive-livelock-free DPDK polling model the paper's setup matches.
pub fn evaluate_throughput<H: MeasurementHook>(
    switch: &mut Switch,
    hook: &mut H,
    packets: &[Packet],
    rate: LineRate,
) -> ThroughputReport {
    assert!(!packets.is_empty(), "need packets to measure");
    let start = Instant::now();
    for p in packets {
        switch.process(p);
        hook.on_packet(p.flow(), p.packet_id(), p.len);
    }
    let elapsed = start.elapsed();
    let cost_ns = elapsed.as_nanos() as f64 / packets.len() as f64;
    let budget = rate.budget_ns();
    let offered = rate.offered_pps();
    let achieved_pps = if cost_ns <= budget {
        offered
    } else {
        offered * budget / cost_ns
    };
    ThroughputReport {
        offered_mpps: offered / 1e6,
        achieved_mpps: achieved_pps / 1e6,
        achieved_gbps: achieved_pps * 8.0 * (rate.frame_bytes + WIRE_OVERHEAD_BYTES) as f64 / 1e9,
        cost_ns_per_packet: cost_ns,
        budget_utilization: cost_ns / budget,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qmax_traces::gen::caida_like;

    #[test]
    fn classic_line_rates_are_reproduced() {
        // 10G at 64B frames = 14.88 Mpps, the textbook number.
        let r = LineRate {
            gbps: 10.0,
            frame_bytes: 64,
        };
        assert!((r.offered_pps() / 1e6 - 14.88).abs() < 0.01);
        assert!((r.budget_ns() - 67.2).abs() < 0.1);
        // 40G at 64B = 59.52 Mpps.
        let r40 = LineRate {
            gbps: 40.0,
            frame_bytes: 64,
        };
        assert!((r40.offered_pps() / 1e6 - 59.52).abs() < 0.05);
    }

    #[test]
    fn achieved_never_exceeds_offered() {
        let mut sw = Switch::new(4);
        let mut hook = NullHook;
        let pkts: Vec<_> = caida_like(50_000, 1).collect();
        let rep = evaluate_throughput(
            &mut sw,
            &mut hook,
            &pkts,
            LineRate {
                gbps: 10.0,
                frame_bytes: 64,
            },
        );
        assert!(rep.achieved_mpps <= rep.offered_mpps + 1e-9);
        assert!(rep.cost_ns_per_packet > 0.0);
        assert!(rep.achieved_gbps <= 10.0 + 1e-9);
    }

    #[test]
    fn expensive_hook_reduces_throughput() {
        struct BusyHook(u64);
        impl MeasurementHook for BusyHook {
            fn on_packet(&mut self, _f: FlowKey, id: u64, _l: u16) {
                // Burn deterministic cycles per packet.
                let mut x = id;
                for _ in 0..2000 {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                }
                self.0 ^= x;
            }
        }
        let pkts: Vec<_> = caida_like(20_000, 2).collect();
        let rate = LineRate {
            gbps: 40.0,
            frame_bytes: 64,
        };
        let mut sw1 = Switch::new(4);
        let rep_null = evaluate_throughput(&mut sw1, &mut NullHook, &pkts, rate);
        let mut sw2 = Switch::new(4);
        let mut busy = BusyHook(0);
        let rep_busy = evaluate_throughput(&mut sw2, &mut busy, &pkts, rate);
        assert!(
            rep_busy.achieved_mpps < rep_null.achieved_mpps,
            "busy {} not below null {}",
            rep_busy.achieved_mpps,
            rep_null.achieved_mpps
        );
        assert!(
            rep_busy.budget_utilization > 1.0,
            "busy hook must blow the 40G budget"
        );
    }

    #[test]
    fn budget_scales_inversely_with_rate() {
        let r10 = LineRate {
            gbps: 10.0,
            frame_bytes: 64,
        };
        let r40 = LineRate {
            gbps: 40.0,
            frame_bytes: 64,
        };
        assert!((r10.budget_ns() / r40.budget_ns() - 4.0).abs() < 1e-9);
        // Bigger frames buy more time per packet.
        let big = LineRate {
            gbps: 10.0,
            frame_bytes: 1500,
        };
        assert!(big.budget_ns() > 10.0 * r10.budget_ns());
    }

    #[test]
    fn report_is_internally_consistent() {
        let mut sw = Switch::new(2);
        let pkts: Vec<_> = caida_like(30_000, 4).collect();
        let rate = LineRate {
            gbps: 10.0,
            frame_bytes: 64,
        };
        let rep = evaluate_throughput(&mut sw, &mut NullHook, &pkts, rate);
        // achieved_gbps reconstructs from achieved_mpps.
        let gbps = rep.achieved_mpps * 1e6 * 8.0 * (64 + 20) as f64 / 1e9;
        assert!((gbps - rep.achieved_gbps).abs() < 1e-9);
        // Utilization below 1 implies line rate achieved.
        if rep.budget_utilization <= 1.0 {
            assert!((rep.achieved_mpps - rep.offered_mpps).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "need packets")]
    fn empty_batch_panics() {
        let mut sw = Switch::new(1);
        evaluate_throughput(
            &mut sw,
            &mut NullHook,
            &[],
            LineRate {
                gbps: 10.0,
                frame_bytes: 64,
            },
        );
    }
}
