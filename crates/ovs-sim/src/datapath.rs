//! The two-tier software datapath: exact-match cache in front of a
//! tuple-space-search classifier.

use qmax_traces::{hash, FlowKey, Packet};

/// Action applied to a matched packet (output port).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Action {
    /// Output port index.
    pub out_port: u16,
}

/// An exact-match cache (EMC) in the style of the OVS userspace
/// datapath: a small direct-indexed 2-way table keyed by the full
/// 5-tuple, answering the common case with one hash and at most two
/// comparisons.
#[derive(Debug, Clone)]
pub struct Emc {
    mask: usize,
    /// Two ways per bucket: (key, action), vacant = None.
    slots: Vec<[Option<(FlowKey, Action)>; 2]>,
    hits: u64,
    misses: u64,
}

impl Emc {
    /// Creates an EMC with `entries` slots (rounded up to a power of
    /// two; OVS uses 8192).
    ///
    /// # Panics
    ///
    /// Panics if `entries == 0`.
    pub fn new(entries: usize) -> Self {
        assert!(entries > 0, "EMC must have entries");
        let n = entries.next_power_of_two();
        Emc {
            mask: n - 1,
            slots: vec![[None, None]; n],
            hits: 0,
            misses: 0,
        }
    }

    #[inline]
    fn bucket(&self, flow: &FlowKey) -> usize {
        (flow.as_u64() as usize) & self.mask
    }

    /// Looks up a flow.
    #[inline]
    pub fn lookup(&mut self, flow: &FlowKey) -> Option<Action> {
        let b = self.bucket(flow);
        for (k, a) in self.slots[b].iter().flatten() {
            if k == flow {
                self.hits += 1;
                return Some(*a);
            }
        }
        self.misses += 1;
        None
    }

    /// Installs a flow, evicting the second way of its bucket if full.
    pub fn install(&mut self, flow: FlowKey, action: Action) {
        let b = self.bucket(&flow);
        let bucket = &mut self.slots[b];
        if bucket[0].is_none() {
            bucket[0] = Some((flow, action));
        } else if bucket[1].is_none() {
            bucket[1] = Some((flow, action));
        } else {
            bucket.swap(0, 1);
            bucket[0] = Some((flow, action));
        }
    }

    /// (hits, misses) counters.
    pub fn counters(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

/// One wildcard mask of the megaflow classifier: which 5-tuple fields
/// the rule set distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowMask {
    /// Prefix bits of the source address that are matched.
    pub src_prefix: u8,
    /// Prefix bits of the destination address that are matched.
    pub dst_prefix: u8,
    /// Whether ports and protocol are matched.
    pub match_l4: bool,
}

impl FlowMask {
    fn apply(&self, flow: &FlowKey) -> FlowKey {
        let src_mask: u32 = if self.src_prefix == 0 {
            0
        } else {
            u32::MAX << (32 - self.src_prefix as u32)
        };
        let dst_mask: u32 = if self.dst_prefix == 0 {
            0
        } else {
            u32::MAX << (32 - self.dst_prefix as u32)
        };
        FlowKey {
            src_ip: flow.src_ip & src_mask,
            dst_ip: flow.dst_ip & dst_mask,
            src_port: if self.match_l4 { flow.src_port } else { 0 },
            dst_port: if self.match_l4 { flow.dst_port } else { 0 },
            proto: if self.match_l4 { flow.proto } else { 0 },
        }
    }
}

/// A tuple-space-search classifier: one open hash table per mask,
/// probed in order (like OVS's dpcls subtables).
#[derive(Debug, Clone)]
pub struct Megaflow {
    masks: Vec<FlowMask>,
    tables: Vec<std::collections::HashMap<u64, Action>>,
    hits: u64,
    misses: u64,
}

impl Megaflow {
    /// Creates a classifier over the given subtable masks (probed in
    /// the given order).
    pub fn new(masks: Vec<FlowMask>) -> Self {
        let tables = masks
            .iter()
            .map(|_| std::collections::HashMap::new())
            .collect();
        Megaflow {
            masks,
            tables,
            hits: 0,
            misses: 0,
        }
    }

    fn masked_key(mask: &FlowMask, flow: &FlowKey) -> u64 {
        hash::mix64(mask.apply(flow).as_u64())
    }

    /// Looks up a flow across all subtables.
    pub fn lookup(&mut self, flow: &FlowKey) -> Option<Action> {
        for (mask, table) in self.masks.iter().zip(&self.tables) {
            if let Some(a) = table.get(&Self::masked_key(mask, flow)) {
                self.hits += 1;
                return Some(*a);
            }
        }
        self.misses += 1;
        None
    }

    /// Installs a rule under subtable `mask_idx`.
    ///
    /// # Panics
    ///
    /// Panics if `mask_idx` is out of range.
    pub fn install(&mut self, mask_idx: usize, flow: &FlowKey, action: Action) {
        let mask = self.masks[mask_idx];
        self.tables[mask_idx].insert(Self::masked_key(&mask, flow), action);
    }

    /// (hits, misses) counters.
    pub fn counters(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

/// Forwarding statistics of a [`Switch`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SwitchStats {
    /// Packets forwarded.
    pub packets: u64,
    /// Bytes forwarded.
    pub bytes: u64,
    /// EMC hits.
    pub emc_hits: u64,
    /// Megaflow (dpcls) hits.
    pub megaflow_hits: u64,
    /// Slow-path upcalls (first packet of a flow).
    pub upcalls: u64,
}

/// The simulated switch datapath: EMC → megaflow → upcall, mirroring
/// the OVS userspace fast path one PMD thread runs.
#[derive(Debug, Clone)]
pub struct Switch {
    emc: Emc,
    megaflow: Megaflow,
    ports: u16,
    stats: SwitchStats,
}

impl Switch {
    /// Creates a switch with an OVS-sized EMC (8192 entries), a
    /// megaflow classifier with a typical subtable mix (a /24-pair
    /// subtable and an exact L4 subtable), and `ports` output ports.
    ///
    /// # Panics
    ///
    /// Panics if `ports == 0`.
    pub fn new(ports: u16) -> Self {
        assert!(ports > 0, "need at least one port");
        Switch {
            emc: Emc::new(8192),
            megaflow: Megaflow::new(vec![
                FlowMask {
                    src_prefix: 24,
                    dst_prefix: 24,
                    match_l4: false,
                },
                FlowMask {
                    src_prefix: 32,
                    dst_prefix: 32,
                    match_l4: true,
                },
            ]),
            ports,
            stats: SwitchStats::default(),
        }
    }

    /// The forwarding decision for a flow (deterministic hash of the
    /// 5-tuple onto an output port — a stand-in for the OpenFlow
    /// pipeline's final action).
    fn decide(&self, flow: &FlowKey) -> Action {
        Action {
            out_port: (flow.as_u64() % self.ports as u64) as u16,
        }
    }

    /// Processes one packet through the datapath and returns its
    /// action. First packets of a flow take the simulated slow path
    /// (an upcall that installs megaflow + EMC entries).
    pub fn process(&mut self, pkt: &Packet) -> Action {
        let flow = pkt.flow();
        self.stats.packets += 1;
        self.stats.bytes += pkt.len as u64;
        if let Some(a) = self.emc.lookup(&flow) {
            self.stats.emc_hits += 1;
            return a;
        }
        if let Some(a) = self.megaflow.lookup(&flow) {
            self.stats.megaflow_hits += 1;
            // Promote to the EMC like OVS does on dpcls hits.
            self.emc.install(flow, a);
            return a;
        }
        // Upcall: consult the (simulated) OpenFlow pipeline, install.
        self.stats.upcalls += 1;
        let action = self.decide(&flow);
        self.megaflow.install(1, &flow, action);
        self.emc.install(flow, action);
        action
    }

    /// Processes an RX batch through the datapath (DPDK polls NICs in
    /// bursts of up to 32 frames; processing batch-wise is how OVS's
    /// PMD loop actually runs). Returns the actions in packet order.
    pub fn process_batch(&mut self, batch: &[Packet], actions: &mut Vec<Action>) {
        actions.clear();
        actions.extend(batch.iter().map(|p| self.process(p)));
    }

    /// Forwarding statistics so far.
    pub fn stats(&self) -> SwitchStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qmax_traces::gen::caida_like;

    #[test]
    fn emc_hit_after_install() {
        let mut emc = Emc::new(128);
        let p: Vec<Packet> = caida_like(1, 1).collect();
        let flow = p[0].flow();
        assert_eq!(emc.lookup(&flow), None);
        emc.install(flow, Action { out_port: 3 });
        assert_eq!(emc.lookup(&flow), Some(Action { out_port: 3 }));
    }

    #[test]
    fn emc_bucket_eviction_keeps_two_ways() {
        let mut emc = Emc::new(1); // single bucket: everything collides
        let pkts: Vec<Packet> = caida_like(200, 2).collect();
        for (i, p) in pkts.iter().take(3).enumerate() {
            emc.install(p.flow(), Action { out_port: i as u16 });
        }
        // Last two installed flows must be present.
        assert!(emc.lookup(&pkts[2].flow()).is_some());
        let present = [0, 1]
            .iter()
            .filter(|&&i| emc.lookup(&pkts[i].flow()).is_some())
            .count();
        assert_eq!(
            present, 1,
            "exactly one older flow survives in the 2-way bucket"
        );
    }

    #[test]
    fn megaflow_wildcards_aggregate_flows() {
        let mut mf = Megaflow::new(vec![FlowMask {
            src_prefix: 24,
            dst_prefix: 0,
            match_l4: false,
        }]);
        let base = FlowKey {
            src_ip: 0x0A000001,
            dst_ip: 1,
            src_port: 1,
            dst_port: 2,
            proto: 6,
        };
        mf.install(0, &base, Action { out_port: 9 });
        // Any flow in the same /24 matches.
        let sibling = FlowKey {
            src_ip: 0x0A0000FF,
            dst_ip: 77,
            src_port: 5,
            dst_port: 6,
            proto: 17,
        };
        assert_eq!(mf.lookup(&sibling), Some(Action { out_port: 9 }));
        let stranger = FlowKey {
            src_ip: 0x0B000001,
            ..sibling
        };
        assert_eq!(mf.lookup(&stranger), None);
    }

    #[test]
    fn switch_upcalls_once_per_flow() {
        let mut sw = Switch::new(4);
        let pkts: Vec<Packet> = caida_like(20_000, 3).collect();
        let flows: std::collections::HashSet<u64> =
            pkts.iter().map(|p| p.flow().as_u64()).collect();
        for p in &pkts {
            sw.process(p);
        }
        let st = sw.stats();
        assert_eq!(st.packets, 20_000);
        assert_eq!(
            st.upcalls as usize,
            flows.len(),
            "one upcall per distinct flow"
        );
        assert_eq!(st.emc_hits + st.megaflow_hits + st.upcalls, st.packets);
        // The fast path must dominate on a skewed trace.
        assert!(
            st.emc_hits > st.packets / 2,
            "EMC hits {} too low",
            st.emc_hits
        );
    }

    #[test]
    fn hit_miss_counters_track_lookups() {
        let mut emc = Emc::new(64);
        let pkts: Vec<Packet> = caida_like(10, 6).collect();
        let flow = pkts[0].flow();
        assert_eq!(emc.lookup(&flow), None);
        emc.install(flow, Action { out_port: 1 });
        emc.lookup(&flow);
        emc.lookup(&flow);
        assert_eq!(emc.counters(), (2, 1));
        let mut mf = Megaflow::new(vec![FlowMask {
            src_prefix: 32,
            dst_prefix: 32,
            match_l4: true,
        }]);
        assert_eq!(mf.lookup(&flow), None);
        mf.install(0, &flow, Action { out_port: 2 });
        assert!(mf.lookup(&flow).is_some());
        assert_eq!(mf.counters(), (1, 1));
    }

    #[test]
    fn subtable_order_gives_first_match_priority() {
        // A /24 wildcard subtable probed before an exact one wins for
        // flows both would match.
        let mut mf = Megaflow::new(vec![
            FlowMask {
                src_prefix: 24,
                dst_prefix: 0,
                match_l4: false,
            },
            FlowMask {
                src_prefix: 32,
                dst_prefix: 32,
                match_l4: true,
            },
        ]);
        let flow = FlowKey {
            src_ip: 0x0A000001,
            dst_ip: 7,
            src_port: 1,
            dst_port: 2,
            proto: 6,
        };
        mf.install(0, &flow, Action { out_port: 10 });
        mf.install(1, &flow, Action { out_port: 20 });
        assert_eq!(mf.lookup(&flow), Some(Action { out_port: 10 }));
    }

    #[test]
    fn batch_processing_matches_per_packet() {
        let pkts: Vec<Packet> = caida_like(3000, 8).collect();
        let mut a = Switch::new(4);
        let mut b = Switch::new(4);
        let per_packet: Vec<Action> = pkts.iter().map(|p| a.process(p)).collect();
        let mut batched = Vec::new();
        let mut all = Vec::new();
        for chunk in pkts.chunks(32) {
            b.process_batch(chunk, &mut batched);
            all.extend(batched.iter().copied());
        }
        assert_eq!(per_packet, all);
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn forwarding_is_deterministic_per_flow() {
        let mut sw = Switch::new(8);
        let pkts: Vec<Packet> = caida_like(5000, 5).collect();
        let mut seen: std::collections::HashMap<u64, u16> = std::collections::HashMap::new();
        for p in &pkts {
            let a = sw.process(p);
            let e = seen.entry(p.flow().as_u64()).or_insert(a.out_port);
            assert_eq!(*e, a.out_port, "flow changed port");
        }
    }
}
