//! Multi-PMD (poll-mode-driver) deployment model.
//!
//! DPDK-OVS scales by running several PMD threads, each polling its own
//! RX queues; the NIC spreads flows over queues with RSS (a hash of the
//! 5-tuple). The paper's integration mirrors that: "we build one shared
//! memory block for each PMD thread of OVS" — i.e. one measurement
//! instance per PMD, merged at query time. This module reproduces the
//! sharding: packets are RSS-hashed onto `n` pipelines, each with its
//! own [`Switch`] and [`MeasurementHook`], and aggregate throughput is
//! limited by the most loaded PMD.

use crate::datapath::{Action, Switch};
use crate::linerate::{LineRate, ThroughputReport, WIRE_OVERHEAD_BYTES};
use crate::MeasurementHook;
use qmax_core::DeamortizedStats;
use qmax_engine::{QMax, ShardHealth, ShardedQMax};
use qmax_traces::{hash, Packet};
use std::time::Instant;

/// A pool of PMD pipelines, each an independent switch datapath plus a
/// measurement hook, fed by RSS.
#[derive(Debug)]
pub struct PmdPool<H> {
    switches: Vec<Switch>,
    hooks: Vec<H>,
    /// Packets dispatched to each PMD.
    loads: Vec<u64>,
}

impl<H: MeasurementHook> PmdPool<H> {
    /// Creates a pool of `n` PMDs whose hooks come from `make_hook`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new<F: FnMut() -> H>(n: usize, mut make_hook: F) -> Self {
        assert!(n > 0, "need at least one PMD");
        PmdPool {
            switches: (0..n).map(|_| Switch::new(8)).collect(),
            hooks: (0..n).map(|_| make_hook()).collect(),
            loads: vec![0; n],
        }
    }

    /// Number of PMDs.
    pub fn pmds(&self) -> usize {
        self.switches.len()
    }

    /// The RSS queue (PMD index) for a packet: a 5-tuple hash, so all
    /// packets of a flow hit the same PMD — which is what lets each
    /// PMD's measurement instance see complete flows.
    #[inline]
    pub fn rss(&self, pkt: &Packet) -> usize {
        (hash::hash64(pkt.flow().as_u64(), 0x0055_0055) % self.switches.len() as u64) as usize
    }

    /// Dispatches one packet to its PMD.
    pub fn process(&mut self, pkt: &Packet) {
        let i = self.rss(pkt);
        self.loads[i] += 1;
        self.switches[i].process(pkt);
        self.hooks[i].on_packet(pkt.flow(), pkt.packet_id(), pkt.len);
    }

    /// Per-PMD packet loads.
    pub fn loads(&self) -> &[u64] {
        &self.loads
    }

    /// Access to the per-PMD hooks (e.g. to merge their reports).
    pub fn hooks_mut(&mut self) -> &mut [H] {
        &mut self.hooks
    }

    /// Runs `packets` through the pool, timing each PMD's share
    /// separately, and reports the aggregate achievable throughput: the
    /// pool keeps line rate iff the *most loaded* PMD fits its share of
    /// the per-packet budget.
    pub fn evaluate_throughput(&mut self, packets: &[Packet], rate: LineRate) -> ThroughputReport {
        assert!(!packets.is_empty(), "need packets to measure");
        let n = self.switches.len();
        debug_assert!(n >= 1);
        // Pre-shard so each PMD's cost is timed in isolation.
        let mut shards: Vec<Vec<&Packet>> = vec![Vec::new(); n];
        for p in packets {
            shards[self.rss(p)].push(p);
        }
        // PMD i receives a share s_i of arrivals and spends c_i ns per
        // packet, so it keeps up with a total arrival rate R as long as
        // R * s_i * c_i <= 1; the pool's capacity is the minimum over
        // PMDs of 1 / (s_i * c_i).
        let mut capacity_pps = f64::INFINITY;
        let mut max_cost_ns = 0.0f64;
        for (i, shard) in shards.iter().enumerate() {
            if shard.is_empty() {
                continue;
            }
            let start = Instant::now();
            for p in shard {
                self.loads[i] += 1;
                self.switches[i].process(p);
                self.hooks[i].on_packet(p.flow(), p.packet_id(), p.len);
            }
            let cost_ns = start.elapsed().as_nanos() as f64 / shard.len() as f64;
            let share = shard.len() as f64 / packets.len() as f64;
            capacity_pps = capacity_pps.min(1e9 / (cost_ns * share));
            max_cost_ns = max_cost_ns.max(cost_ns);
        }
        let offered = rate.offered_pps();
        let achieved = offered.min(capacity_pps);
        ThroughputReport {
            offered_mpps: offered / 1e6,
            achieved_mpps: achieved / 1e6,
            achieved_gbps: achieved * 8.0 * (rate.frame_bytes + WIRE_OVERHEAD_BYTES) as f64 / 1e9,
            cost_ns_per_packet: max_cost_ns,
            budget_utilization: offered / capacity_pps,
        }
    }
}

/// A PMD pool whose measurement side is a [`ShardedQMax`] engine with
/// exactly **one shard per PMD thread** — the paper's "one shared memory
/// block for each PMD thread of OVS", expressed through `qmax-engine`.
///
/// Routing uses the engine's own id→shard hash for *both* the switch
/// datapath and the measurement insert, so a flow's packets always hit
/// the same `(Switch, shard)` pair: the datapath keeps its EMC locality
/// and the shard sees the flow's complete sub-stream, which is what
/// makes [`ShardedQMaxPool::merged_top_q`] exact.
///
/// Packets are ranked by IP total length, i.e. a query returns the `q`
/// largest packets observed across all PMDs.
#[derive(Debug)]
pub struct ShardedQMaxPool {
    switches: Vec<Switch>,
    engine: ShardedQMax<u64, u64>,
    loads: Vec<u64>,
    /// Scratch for batched datapath actions (reused across batches).
    actions: Vec<Action>,
}

impl ShardedQMaxPool {
    /// Creates `pmds` PMD pipelines, each owning one de-amortized q-MAX
    /// shard configured for the global top-`q` with space-slack `gamma`.
    ///
    /// # Panics
    ///
    /// Panics if `pmds == 0`, `q == 0`, or `gamma` is invalid.
    pub fn new(pmds: usize, q: usize, gamma: f64) -> Self {
        assert!(pmds > 0, "need at least one PMD");
        ShardedQMaxPool {
            switches: (0..pmds).map(|_| Switch::new(8)).collect(),
            engine: ShardedQMax::new(q, gamma, pmds),
            loads: vec![0; pmds],
            actions: Vec::new(),
        }
    }

    /// Number of PMD pipelines (= engine shards).
    pub fn pmds(&self) -> usize {
        self.switches.len()
    }

    /// The PMD (and shard) a packet routes to; flow-stable.
    #[inline]
    pub fn pmd_of(&self, pkt: &Packet) -> usize {
        self.engine.shard_of(&pkt.flow().as_u64())
    }

    /// Processes one packet: switch forwarding plus a measurement
    /// insert into the packet's PMD-local shard.
    pub fn process(&mut self, pkt: &Packet) {
        let i = self.pmd_of(pkt);
        self.loads[i] += 1;
        self.switches[i].process(pkt);
        self.engine.insert(pkt.flow().as_u64(), pkt.len as u64);
    }

    /// Processes an RX burst PMD-wise: packets are grouped per PMD,
    /// forwarded with [`Switch::process_batch`], and measured with the
    /// engine's Ψ-pre-filtered [`ShardedQMax::insert_batch`] — the
    /// batched hot path end to end.
    pub fn process_batch(&mut self, batch: &[Packet]) {
        let n = self.switches.len();
        let mut groups: Vec<Vec<Packet>> = vec![Vec::new(); n];
        for p in batch {
            groups[self.pmd_of(p)].push(*p);
        }
        let mut actions = std::mem::take(&mut self.actions);
        for (i, group) in groups.iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            self.loads[i] += group.len() as u64;
            self.switches[i].process_batch(group, &mut actions);
            let items: Vec<(u64, u64)> = group
                .iter()
                .map(|p| (p.flow().as_u64(), p.len as u64))
                .collect();
            self.engine.insert_batch(&items);
        }
        self.actions = actions;
    }

    /// Packets dispatched to each PMD.
    pub fn loads(&self) -> &[u64] {
        &self.loads
    }

    /// The global top-`q` packets by length, merged across all PMD
    /// shards (exact: see [`ShardedQMax`]).
    pub fn merged_top_q(&mut self) -> Vec<(u64, u64)> {
        self.engine.query()
    }

    /// The measurement engine (e.g. to reset it between intervals).
    pub fn engine_mut(&mut self) -> &mut ShardedQMax<u64, u64> {
        &mut self.engine
    }

    /// Quarantines one PMD's measurement shard: its reservoir is
    /// replaced with a fresh, empty one and the number of discarded
    /// candidates is returned. The switch datapath and the other PMDs'
    /// shards are untouched, so forwarding and measurement continue —
    /// the operational move when one PMD's instance is suspected
    /// corrupt (the paper's per-PMD independence means restarting one
    /// instance never stalls the others).
    ///
    /// # Panics
    ///
    /// Panics if `pmd` is out of range.
    pub fn quarantine_pmd(&mut self, pmd: usize) -> usize {
        let discarded = self.engine.rebuild_shard(pmd);
        discarded.len()
    }

    /// Warm-quarantines one PMD's measurement shard: the reservoir
    /// structure is replaced, but the displaced shard's local top-`q`
    /// candidates are salvaged into the fresh one (the number carried
    /// over is returned). Unlike [`quarantine_pmd`](Self::quarantine_pmd),
    /// the merged top-`q` over the *full* packet history stays exact
    /// afterwards — the operational move when a PMD instance's
    /// structure is suspect but its candidates are still trusted.
    ///
    /// # Panics
    ///
    /// Panics if `pmd` is out of range.
    pub fn quarantine_pmd_warm(&mut self, pmd: usize) -> usize {
        self.engine.rebuild_shard_warm(pmd)
    }

    /// Per-PMD measurement-shard health: `Degraded` after a cold
    /// [`quarantine_pmd`](Self::quarantine_pmd) that discarded
    /// candidates, `Restored` after a warm one, `Healthy` otherwise.
    pub fn shard_health(&self) -> &[ShardHealth] {
        self.engine.shard_health()
    }

    /// Per-PMD de-amortized execution counters, for observability: the
    /// worst-case-bound invariants stay checkable shard by shard.
    pub fn shard_stats(&self) -> Vec<DeamortizedStats> {
        self.engine.shard_stats()
    }

    /// Runs `packets` through the pool PMD-wise (batched datapath +
    /// batched measurement), timing each PMD's share in isolation, and
    /// reports achievable throughput against `rate` — the pool keeps
    /// line rate iff the most loaded PMD fits its share of the budget
    /// (same model as [`PmdPool::evaluate_throughput`]).
    pub fn evaluate_throughput(&mut self, packets: &[Packet], rate: LineRate) -> ThroughputReport {
        assert!(!packets.is_empty(), "need packets to measure");
        let n = self.switches.len();
        let mut shards: Vec<Vec<Packet>> = vec![Vec::new(); n];
        for p in packets {
            shards[self.pmd_of(p)].push(*p);
        }
        let mut capacity_pps = f64::INFINITY;
        let mut max_cost_ns = 0.0f64;
        let mut actions = std::mem::take(&mut self.actions);
        for (i, shard) in shards.iter().enumerate() {
            if shard.is_empty() {
                continue;
            }
            let start = Instant::now();
            for burst in shard.chunks(32) {
                self.loads[i] += burst.len() as u64;
                self.switches[i].process_batch(burst, &mut actions);
                let items: Vec<(u64, u64)> = burst
                    .iter()
                    .map(|p| (p.flow().as_u64(), p.len as u64))
                    .collect();
                self.engine.insert_batch(&items);
            }
            let cost_ns = start.elapsed().as_nanos() as f64 / shard.len() as f64;
            let share = shard.len() as f64 / packets.len() as f64;
            capacity_pps = capacity_pps.min(1e9 / (cost_ns * share));
            max_cost_ns = max_cost_ns.max(cost_ns);
        }
        self.actions = actions;
        let offered = rate.offered_pps();
        let achieved = offered.min(capacity_pps);
        ThroughputReport {
            offered_mpps: offered / 1e6,
            achieved_mpps: achieved / 1e6,
            achieved_gbps: achieved * 8.0 * (rate.frame_bytes + WIRE_OVERHEAD_BYTES) as f64 / 1e9,
            cost_ns_per_packet: max_cost_ns,
            budget_utilization: offered / capacity_pps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NullHook;
    use qmax_traces::gen::caida_like;

    #[test]
    fn rss_is_per_flow_stable() {
        let pool: PmdPool<NullHook> = PmdPool::new(4, || NullHook);
        let pkts: Vec<Packet> = caida_like(5000, 1).collect();
        let mut assignment = std::collections::HashMap::new();
        for p in &pkts {
            let e = assignment
                .entry(p.flow().as_u64())
                .or_insert_with(|| pool.rss(p));
            assert_eq!(*e, pool.rss(p), "flow changed PMD");
        }
    }

    #[test]
    fn loads_are_roughly_balanced() {
        let mut pool: PmdPool<NullHook> = PmdPool::new(4, || NullHook);
        for p in caida_like(40_000, 2) {
            pool.process(&p);
        }
        let total: u64 = pool.loads().iter().sum();
        assert_eq!(total, 40_000);
        for (i, &l) in pool.loads().iter().enumerate() {
            // Flow-level RSS skews with flow sizes; allow a wide band.
            assert!(
                l > total / 20 && l < total * 3 / 4,
                "PMD {i} load {l} badly unbalanced"
            );
        }
    }

    #[test]
    fn more_pmds_do_not_reduce_throughput() {
        let pkts: Vec<Packet> = caida_like(60_000, 3).collect();
        let rate = LineRate {
            gbps: 40.0,
            frame_bytes: 64,
        };
        let mut one: PmdPool<NullHook> = PmdPool::new(1, || NullHook);
        let r1 = one.evaluate_throughput(&pkts, rate);
        let mut four: PmdPool<NullHook> = PmdPool::new(4, || NullHook);
        let r4 = four.evaluate_throughput(&pkts, rate);
        assert!(
            r4.achieved_mpps >= r1.achieved_mpps * 0.5,
            "scaling collapsed: 1 PMD {} vs 4 PMDs {}",
            r1.achieved_mpps,
            r4.achieved_mpps
        );
        assert!(r4.achieved_mpps <= r4.offered_mpps + 1e-9);
    }

    #[test]
    fn sharded_pool_top_q_matches_global_sort() {
        let pkts: Vec<Packet> = caida_like(30_000, 6).collect();
        let q = 64;
        let mut expect: Vec<u64> = pkts.iter().map(|p| p.len as u64).collect();
        expect.sort_unstable_by(|a, b| b.cmp(a));
        expect.truncate(q);
        expect.sort_unstable();
        for pmds in [1usize, 2, 4] {
            let mut pool = ShardedQMaxPool::new(pmds, q, 0.25);
            for burst in pkts.chunks(32) {
                pool.process_batch(burst);
            }
            let mut got: Vec<u64> = pool.merged_top_q().into_iter().map(|(_, v)| v).collect();
            got.sort_unstable();
            assert_eq!(got, expect, "merged top-q wrong at {pmds} PMDs");
            assert_eq!(pool.loads().iter().sum::<u64>(), pkts.len() as u64);
        }
    }

    #[test]
    fn sharded_pool_routing_keeps_flows_pmd_local() {
        let pool = ShardedQMaxPool::new(4, 16, 0.5);
        let pkts: Vec<Packet> = caida_like(5_000, 12).collect();
        let mut assignment = std::collections::HashMap::new();
        for p in &pkts {
            let e = assignment
                .entry(p.flow().as_u64())
                .or_insert_with(|| pool.pmd_of(p));
            assert_eq!(*e, pool.pmd_of(p), "flow changed PMD");
        }
    }

    #[test]
    fn sharded_pool_single_and_batch_paths_agree() {
        let pkts: Vec<Packet> = caida_like(20_000, 13).collect();
        let q = 32;
        let mut single = ShardedQMaxPool::new(3, q, 0.5);
        let mut batched = ShardedQMaxPool::new(3, q, 0.5);
        for p in &pkts {
            single.process(p);
        }
        for burst in pkts.chunks(32) {
            batched.process_batch(burst);
        }
        let mut a: Vec<u64> = single.merged_top_q().into_iter().map(|(_, v)| v).collect();
        let mut b: Vec<u64> = batched.merged_top_q().into_iter().map(|(_, v)| v).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        assert_eq!(single.loads(), batched.loads());
    }

    #[test]
    fn sharded_pool_throughput_report_is_sane() {
        let pkts: Vec<Packet> = caida_like(40_000, 14).collect();
        let rate = LineRate {
            gbps: 10.0,
            frame_bytes: 64,
        };
        let mut pool = ShardedQMaxPool::new(2, 1000, 0.25);
        let r = pool.evaluate_throughput(&pkts, rate);
        assert!(r.achieved_mpps <= r.offered_mpps + 1e-9);
        assert!(r.cost_ns_per_packet > 0.0);
        // Observability: every shard obeys the worst-case bound.
        for (i, s) in pool.shard_stats().iter().enumerate() {
            assert_eq!(s.forced_completions, 0, "shard {i} violated the work bound");
        }
    }

    #[test]
    fn pool_survives_a_quarantined_pmd() {
        let pkts: Vec<Packet> = caida_like(30_000, 17).collect();
        let q = 48;
        let mut pool = ShardedQMaxPool::new(4, q, 0.25);
        let (first, second) = pkts.split_at(pkts.len() / 2);
        for burst in first.chunks(32) {
            pool.process_batch(burst);
        }
        let discarded = pool.quarantine_pmd(1);
        assert!(discarded > 0, "a loaded shard should hold candidates");
        // Forwarding and measurement continue on all PMDs, including
        // the rebuilt one.
        for burst in second.chunks(32) {
            pool.process_batch(burst);
        }
        // The merged result is exact over what the shards have seen:
        // everything except PMD 1's pre-quarantine sub-stream.
        let mut expect: Vec<u64> = first
            .iter()
            .filter(|p| pool.pmd_of(p) != 1)
            .chain(second.iter())
            .map(|p| p.len as u64)
            .collect();
        expect.sort_unstable_by(|a, b| b.cmp(a));
        expect.truncate(q);
        expect.sort_unstable();
        let mut got: Vec<u64> = pool.merged_top_q().into_iter().map(|(_, v)| v).collect();
        got.sort_unstable();
        assert_eq!(got, expect, "merged top-q wrong after quarantine");
        assert_eq!(pool.loads().iter().sum::<u64>(), pkts.len() as u64);
    }

    #[test]
    fn pool_warm_quarantine_keeps_full_history_top_q() {
        let pkts: Vec<Packet> = caida_like(30_000, 17).collect();
        let q = 48;
        let mut pool = ShardedQMaxPool::new(4, q, 0.25);
        let (first, second) = pkts.split_at(pkts.len() / 2);
        for burst in first.chunks(32) {
            pool.process_batch(burst);
        }
        let carried = pool.quarantine_pmd_warm(1);
        assert!(carried > 0, "a loaded shard should salvage candidates");
        assert!(carried <= q, "salvage is the local top-q, at most q");
        assert_eq!(pool.shard_health()[1], qmax_engine::ShardHealth::Restored);
        for burst in second.chunks(32) {
            pool.process_batch(burst);
        }
        // Unlike the cold quarantine, nothing is lost: the merged
        // top-q equals a reference over the full packet history.
        let mut expect: Vec<u64> = pkts.iter().map(|p| p.len as u64).collect();
        expect.sort_unstable_by(|a, b| b.cmp(a));
        expect.truncate(q);
        expect.sort_unstable();
        let mut got: Vec<u64> = pool.merged_top_q().into_iter().map(|(_, v)| v).collect();
        got.sort_unstable();
        assert_eq!(
            got, expect,
            "merged top-q lost items across warm quarantine"
        );
        assert_eq!(pool.loads().iter().sum::<u64>(), pkts.len() as u64);
    }

    #[test]
    fn per_pmd_hooks_observe_disjoint_flows() {
        #[derive(Default)]
        struct FlowsHook(std::collections::HashSet<u64>);
        impl MeasurementHook for FlowsHook {
            fn on_packet(&mut self, flow: qmax_traces::FlowKey, _id: u64, _len: u16) {
                self.0.insert(flow.as_u64());
            }
        }
        let mut pool: PmdPool<FlowsHook> = PmdPool::new(3, FlowsHook::default);
        for p in caida_like(20_000, 4) {
            pool.process(&p);
        }
        let sets: Vec<&std::collections::HashSet<u64>> =
            pool.hooks_mut().iter().map(|h| &h.0).collect();
        for i in 0..sets.len() {
            for j in i + 1..sets.len() {
                assert!(
                    sets[i].is_disjoint(sets[j]),
                    "PMDs {i} and {j} observed overlapping flows"
                );
            }
        }
    }
}
