//! A virtual-switch datapath simulator standing in for the paper's
//! DPDK-enabled Open vSwitch testbed (Section 6.6).
//!
//! The paper's OVS experiments answer one question: *how much of the
//! per-packet time budget at line rate does the measurement structure
//! consume?* The moving parts are (a) a software datapath that must
//! touch a flow table per packet, (b) a measurement hook fed with
//! `(flow, packet id, length)` per packet — exactly what the paper's
//! modified OVS copies into shared memory — and (c) a line-rate packet
//! source whose inter-arrival budget the sum of (a) and (b) must fit.
//!
//! This crate rebuilds those parts in software:
//!
//! * [`Switch`] — an OVS-style two-tier datapath: an exact-match cache
//!   ([`Emc`]) in front of a tuple-space-search megaflow classifier
//!   ([`Megaflow`]), with first-packet "upcalls" installing entries.
//! * [`MeasurementHook`] — the per-packet measurement interface.
//! * [`LineRate`] / [`evaluate_throughput`] — the achievable-throughput
//!   model: the datapath + hook is timed over a real packet batch, and
//!   the achieved rate is the offered line rate capped by the measured
//!   per-packet cost (10G/40G, minimal or trace-derived frame sizes —
//!   the configurations of Figures 12–17).
//!
//! What is *not* simulated: NIC DMA, PCIe, and kernel bypass details —
//! these contribute a constant per-packet cost identical across the
//! compared configurations, so they shift all curves equally and do not
//! change who fits the budget (see DESIGN.md for the substitution
//! argument).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod datapath;
mod linerate;
mod pmd;
mod topology;

pub use datapath::{Action, Emc, FlowMask, Megaflow, Switch, SwitchStats};
pub use linerate::{evaluate_throughput, LineRate, NullHook, ThroughputReport};
pub use pmd::{PmdPool, ShardedQMaxPool};
use qmax_traces::FlowKey;
pub use topology::{LeafSpine, Path};

/// Per-packet measurement callback: receives what the paper's modified
/// OVS records for each packet (source flow, packet id, byte length).
pub trait MeasurementHook {
    /// Called once per forwarded packet.
    fn on_packet(&mut self, flow: FlowKey, packet_id: u64, len: u16);

    /// Label used in benchmark output.
    fn name(&self) -> &'static str {
        "hook"
    }
}
