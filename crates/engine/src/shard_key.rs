//! Hashing item ids onto shards.

use qmax_traces::FlowKey;

/// Types usable as sharded item ids: anything that can contribute a
/// 64-bit word to the shard hash.
///
/// The word does **not** need to be well mixed — the engine finalizes it
/// with a seeded 64-bit mixer before reducing onto a shard index — but
/// equal ids must produce equal words so all updates of one id land in
/// the same shard (the sharded-reservoir analogue of RSS keeping a flow
/// on one PMD thread).
pub trait ShardKey {
    /// A 64-bit word identifying this id; equal ids give equal words.
    fn shard_hash(&self) -> u64;
}

macro_rules! impl_shard_key_int {
    ($($t:ty),*) => {$(
        impl ShardKey for $t {
            #[inline]
            fn shard_hash(&self) -> u64 {
                *self as u64
            }
        }
    )*};
}

impl_shard_key_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ShardKey for u128 {
    #[inline]
    fn shard_hash(&self) -> u64 {
        (*self as u64) ^ ((*self >> 64) as u64)
    }
}

impl ShardKey for FlowKey {
    #[inline]
    fn shard_hash(&self) -> u64 {
        self.as_u64()
    }
}

impl<T: ShardKey + ?Sized> ShardKey for &T {
    #[inline]
    fn shard_hash(&self) -> u64 {
        (**self).shard_hash()
    }
}

impl<A: ShardKey, B: ShardKey> ShardKey for (A, B) {
    #[inline]
    fn shard_hash(&self) -> u64 {
        self.0.shard_hash() ^ self.1.shard_hash().rotate_left(29)
    }
}
