//! # Sharded, batch-insert q-MAX engine
//!
//! The paper's OVS integration (Section 6.6) runs **one measurement
//! instance per PMD thread** and merges them at query time; that is what
//! lets q-MAX ride a multi-queue NIC to 10G/40G line rate. This crate
//! generalizes the pattern into a reusable engine:
//!
//! * [`ShardedQMax`] — `S` independent q-MAX shards (any [`QMax`]
//!   backend, [`DeamortizedQMax`] by default). Item ids are
//!   hash-partitioned over shards ([`ShardKey`]), so each shard sees a
//!   disjoint sub-stream, exactly like RSS spreading flows over PMD
//!   threads.
//! * **Batched hot path** — [`ShardedQMax::insert_batch`] snapshots each
//!   shard's admission threshold Ψ once per call and drops sub-threshold
//!   items with a single compare, routing the survivors into per-shard
//!   runs handed to each backend as one [`BatchInsert`] batch. Since Ψ
//!   only rises, the snapshot is always a safe under-approximation: the
//!   pre-filter never drops an item the shard would have admitted, and
//!   the shard re-checks its exact Ψ internally.
//! * **Structure-of-arrays shards** — [`ShardedQMax::new_soa`] (and
//!   `new_soa_amortized`) build shards from the split-lane
//!   [`qmax_core::SoaDeamortizedQMax`] /
//!   [`qmax_core::SoaAmortizedQMax`] backends: branchless batch
//!   admission and value-only selection kernels for `Copy` primitive
//!   ids/values, the hot-loop constant the paper's throughput argument
//!   rests on.
//! * **Merge on query** — each shard retains its local top-`q`; any
//!   global top-`q` item is beaten by at most `q − 1` items globally, so
//!   certainly by at most `q − 1` within its own shard. The union of the
//!   `S` local top-`q` sets therefore contains the global top-`q`, which
//!   a final `O(S·q)` selection ([`qmax_select::nth_smallest`]) extracts
//!   exactly.
//! * **Multi-threaded driver** — [`ShardedQMax::run_threaded`] spawns
//!   one worker per shard (scoped `std` threads + lock-free SPSC
//!   [`ring`] buffers; no external dependencies), routes a stream into
//!   per-shard batches, and reports per-shard load, ring high-water
//!   occupancy, and aggregate insert throughput; optional core pinning
//!   via [`DriverConfig::pin_threads`], and
//!   [`ShardedQMax::run_threaded_partitioned`] fans P ingestion
//!   threads out over one ring per (thread × shard).
//! * **Fault tolerance** — worker panics are caught and isolated: the
//!   failing shard is quarantined and rebuilt empty from the engine's
//!   stored backend factory while the other workers keep running
//!   ([`DriverReport::failures`]); [`OverloadPolicy::Shed`] bounds
//!   producer latency under a slow shard by shedding a budgeted number
//!   of items instead of blocking; and the [`fault`] module provides a
//!   deterministic fault-injection harness ([`FaultyBackend`]) to test
//!   all of it reproducibly.
//! * **Supervision** — [`ShardedQMax::run_supervised`] adds
//!   checkpointed **warm recovery** (a panicking shard restores from
//!   its last [`qmax_core::Checkpoint`] snapshot, bounding loss to one
//!   checkpoint interval), a **stall watchdog** (heartbeat-silent
//!   workers are replaced under bounded exponential backoff with
//!   deterministic jitter), a full [`ShardLifecycle`] transition log,
//!   and coverage-annotated degraded queries
//!   ([`ShardedQMax::query_with_coverage`]).
//! * **Observability** — per-shard [`DeamortizedStats`] roll up via
//!   [`ShardedQMax::aggregate_stats`], so the worst-case-bound
//!   invariants (`forced_completions == 0`, bounded `max_step_ops`)
//!   remain checkable per shard in a sharded deployment.
//!
//! ## Quick start
//!
//! ```
//! use qmax_engine::ShardedQMax;
//! use qmax_core::QMax;
//!
//! // Track the global top-4 across 4 hash-partitioned shards.
//! let mut engine: ShardedQMax<u64, u64> = ShardedQMax::new(4, 0.25, 4);
//! let items: Vec<(u64, u64)> = (0..10_000u64).map(|i| (i, i * 7 % 9973)).collect();
//! engine.insert_batch(&items);
//! let mut top: Vec<u64> = engine.query().into_iter().map(|(_, v)| v).collect();
//! top.sort_unstable();
//! assert_eq!(top, vec![9969, 9970, 9971, 9972]);
//! ```

#![warn(missing_docs)]
// `unsafe` is denied crate-wide and allowed in exactly one place: the
// [`ring`] module's SPSC slot handoff, whose Acquire/Release protocol
// is documented there and exercised under Miri in CI.
#![deny(unsafe_code)]

mod driver;
pub mod fault;
pub mod ring;
mod shard_key;
mod sharded;
mod supervisor;

pub use driver::{DriverConfig, DriverReport, OverloadPolicy, ShardFailure};
pub use fault::{FaultKind, FaultSchedule, FaultSilenceGuard, FaultyBackend};
pub use shard_key::ShardKey;
pub use sharded::{CoverageQuery, ShardHealth, ShardedQMax};
pub use supervisor::{LifecycleEvent, ShardLifecycle, ShardState, WatchdogConfig};

pub use qmax_core::{
    BackendSnapshot, BatchInsert, Checkpoint, DeamortizedQMax, DeamortizedStats, QMax,
    SoaAmortizedQMax, SoaDeamortizedQMax,
};
