//! Multi-threaded shard driver: one worker thread per shard, fed with
//! pre-routed batches over bounded channels.
//!
//! This is the software analogue of the paper's per-PMD deployment: the
//! producer plays the NIC's RSS stage (hash each id, append to the
//! target shard's batch), workers play PMD threads (drain batches into
//! their private reservoir), and nothing is shared between workers, so
//! there is no locking on the per-item hot path.
//!
//! # Fault tolerance
//!
//! A measurement data plane must not take down the forwarding plane it
//! observes, so the driver isolates shard failures instead of
//! propagating them:
//!
//! * **Panic isolation** — every batch drain runs under
//!   [`std::panic::catch_unwind`]. A panicking shard is *quarantined*:
//!   its poisoned backend is dropped, the remainder of its sub-stream is
//!   drained off the channel and counted (never processed), and the
//!   other `S − 1` workers keep running untouched. After the run the
//!   quarantined slot is rebuilt empty from the engine's stored backend
//!   factory, so the engine stays queryable — exactly the per-PMD
//!   independence argument: one instance restarting never stalls the
//!   others.
//! * **Load shedding** — [`OverloadPolicy::Shed`] switches the producer
//!   from blocking sends to `try_send` with a bounded per-shard drop
//!   budget, trading bounded loss for producer latency when a shard
//!   falls behind (a stalled PMD sheds packets; it does not stall RSS).
//! * **Failure accounting** — [`DriverReport`] balances every routed
//!   item into drained, shed, or quarantined, and lists each failure as
//!   a [`ShardFailure`] with the captured panic message.

use crate::shard_key::ShardKey;
use crate::sharded::{ShardHealth, ShardedQMax};
use crate::supervisor::{ShardLifecycle, WatchdogConfig};
use qmax_core::BatchInsert;
#[cfg(test)]
use qmax_core::QMax;
use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::thread;
use std::time::{Duration, Instant};

/// What the producer does when a shard's bounded queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverloadPolicy {
    /// Block until the worker frees a slot (lossless backpressure; a
    /// slow shard throttles the whole stream). The default.
    Block,
    /// Drop the batch instead of blocking, up to `max_dropped` items
    /// per shard; once a shard's drop budget is spent the producer
    /// falls back to blocking sends for it, so the loss is bounded.
    Shed {
        /// Per-shard shed budget in items.
        max_dropped: u64,
    },
}

/// Tuning knobs for [`ShardedQMax::run_threaded`].
#[derive(Debug, Clone, Copy)]
pub struct DriverConfig {
    /// Items per batch handed to a worker (amortizes channel overhead;
    /// the paper's shared-memory blocks play the same role).
    pub batch_size: usize,
    /// Bounded in-flight batches per worker before the overload policy
    /// applies (backpressure instead of unbounded queueing).
    pub queue_depth: usize,
    /// Producer behavior when a worker's queue is full.
    pub overload: OverloadPolicy,
    /// Checkpoint cadence for [`ShardedQMax::run_supervised`], in
    /// drained items per shard (snapshots are taken at batch
    /// boundaries, so the effective interval is rounded up to the next
    /// batch). `None` disables checkpointing: panics fall back to the
    /// cold PR 4 quarantine path. Ignored by
    /// [`ShardedQMax::run_threaded`].
    pub checkpoint_every: Option<u64>,
    /// Stall-watchdog and restart policy for
    /// [`ShardedQMax::run_supervised`]. `None` disables stall
    /// detection (panic recovery then uses [`WatchdogConfig::default`]
    /// for its restart budget and backoff). Ignored by
    /// [`ShardedQMax::run_threaded`].
    pub watchdog: Option<WatchdogConfig>,
}

impl Default for DriverConfig {
    fn default() -> Self {
        DriverConfig {
            batch_size: 1024,
            queue_depth: 8,
            overload: OverloadPolicy::Block,
            checkpoint_every: None,
            watchdog: None,
        }
    }
}

/// One quarantined shard: which worker panicked, why, and what it cost.
#[derive(Debug, Clone)]
pub struct ShardFailure {
    /// Index of the shard whose worker panicked.
    pub shard: usize,
    /// The captured panic message (`"non-string panic payload"` when the
    /// payload was neither `&str` nor `String`).
    pub message: String,
    /// Items routed to the shard but never processed: the batch that
    /// panicked plus everything drained-and-dropped afterwards. Items
    /// the shard processed *before* panicking are also discarded with
    /// the poisoned backend, but are counted under
    /// [`DriverReport::per_shard_drained`], not here.
    pub items_lost: u64,
}

/// What a threaded run did: per-shard load, loss accounting, failures,
/// and aggregate timing.
///
/// Every routed item lands in exactly one bucket per shard:
/// `per_shard_items[s] == per_shard_drained[s] + per_shard_dropped[s]
/// + per_shard_quarantined[s]`.
#[derive(Debug, Clone)]
pub struct DriverReport {
    /// Total items routed.
    pub items: u64,
    /// Wall-clock time from first route to last worker joining.
    pub elapsed: Duration,
    /// Items routed to each shard.
    pub per_shard_items: Vec<u64>,
    /// Items each shard's backend admitted (survived both the batched
    /// pre-filter and the backend's own threshold check).
    pub per_shard_admitted: Vec<u64>,
    /// Items each shard's worker actually processed (admitted or
    /// filtered by the backend).
    pub per_shard_drained: Vec<u64>,
    /// Items shed by the producer under [`OverloadPolicy::Shed`]
    /// because the shard's queue was full and budget remained.
    pub per_shard_dropped: Vec<u64>,
    /// Items routed to a shard but never processed because the shard
    /// was quarantined (its worker panicked, or its channel closed
    /// early).
    pub per_shard_quarantined: Vec<u64>,
    /// Candidate entries re-adopted from checkpoints by warm restores
    /// of each shard (always zero for [`ShardedQMax::run_threaded`],
    /// which recovers cold). Entries restore exactly once per recovery:
    /// [`qmax_core::Checkpoint::restore`] overwrites, never merges.
    pub per_shard_recovered: Vec<u64>,
    /// One entry per quarantined shard, in shard order.
    pub failures: Vec<ShardFailure>,
    /// Each shard's [`qmax_core::QMax::backend_label`] after the run
    /// (a quarantined shard reports its rebuilt backend's label) —
    /// surfaces which layout the adaptive backend policy chose per
    /// shard.
    pub per_shard_backend: Vec<&'static str>,
    /// Supervision state transitions recorded during the run (empty for
    /// [`ShardedQMax::run_threaded`], which has no supervisor).
    pub lifecycle: ShardLifecycle,
}

impl DriverReport {
    /// Aggregate insert throughput in millions of items per second.
    pub fn throughput_mips(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.items as f64 / self.elapsed.as_secs_f64() / 1e6
    }

    /// Total items shed by the producer across shards.
    pub fn dropped(&self) -> u64 {
        self.per_shard_dropped.iter().sum()
    }

    /// Total items lost to quarantined shards across the run.
    pub fn quarantined(&self) -> u64 {
        self.per_shard_quarantined.iter().sum()
    }

    /// Total candidate entries re-adopted from checkpoints by warm
    /// restores across shards.
    pub fn recovered(&self) -> u64 {
        self.per_shard_recovered.iter().sum()
    }

    /// Whether shard `s` finished the run un-quarantined.
    pub fn is_healthy(&self, s: usize) -> bool {
        !self.failures.iter().any(|f| f.shard == s)
    }

    /// Indices of shards that finished the run un-quarantined.
    pub fn healthy_shards(&self) -> Vec<usize> {
        (0..self.per_shard_items.len())
            .filter(|&s| self.is_healthy(s))
            .collect()
    }

    /// Load-balance quality over *healthy* shards: most-loaded healthy
    /// shard relative to the healthy mean (1.0 = perfectly balanced;
    /// the pool's throughput is limited by the most loaded surviving
    /// worker, exactly as with PMD threads). Quarantined shards are
    /// excluded — a dead worker neither carries load nor bounds
    /// throughput. 0.0 when every shard was quarantined or no items
    /// flowed; exactly 1.0 when a single healthy shard remains.
    pub fn max_load_factor(&self) -> f64 {
        let healthy: Vec<u64> = self
            .per_shard_items
            .iter()
            .enumerate()
            .filter(|&(s, _)| self.is_healthy(s))
            .map(|(_, &n)| n)
            .collect();
        if healthy.is_empty() {
            return 0.0;
        }
        let max = healthy.iter().copied().max().unwrap_or(0) as f64;
        let mean = healthy.iter().sum::<u64>() as f64 / healthy.len() as f64;
        if mean == 0.0 {
            0.0
        } else {
            max / mean
        }
    }
}

/// Drains a whole owned batch into one shard via the backend's own
/// [`BatchInsert`] path: the worker-side half of the batched hot path.
/// SoA backends route this through the vectorized Ψ-filter admit
/// kernel; the default implementation degrades to the same Ψ-cached
/// singleton loop the driver used to inline here.
pub(crate) fn drain_batch<I, V: Ord, B: BatchInsert<I, V>>(
    shard: &mut B,
    batch: Vec<(I, V)>,
) -> u64 {
    shard.insert_batch(&batch) as u64
}

/// Renders a caught panic payload as the message string panics carry in
/// practice (`panic!("…")` yields `&str` or `String`).
pub(crate) fn panic_message(payload: Box<dyn Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// What one worker thread hands back when its channel closes.
struct WorkerOutcome<B> {
    /// The backend, unless it was poisoned by a panic and dropped.
    shard: Option<B>,
    /// Items admitted by the backend.
    admitted: u64,
    /// Items processed by the backend (admitted or filtered).
    drained: u64,
    /// Items received but never processed (the panicking batch plus
    /// everything drained-and-dropped after the panic).
    quarantined: u64,
    /// The first panic's message, if any.
    panic_message: Option<String>,
}

/// One worker's drain loop: processes batches under `catch_unwind`,
/// and on a panic drops the poisoned backend but *keeps receiving* so
/// the producer never blocks on a dead queue — the rest of the shard's
/// sub-stream is counted as quarantined instead.
fn worker_loop<I, V: Ord, B: BatchInsert<I, V>>(
    shard: B,
    rx: mpsc::Receiver<Vec<(I, V)>>,
) -> WorkerOutcome<B> {
    let mut out = WorkerOutcome {
        shard: None,
        admitted: 0,
        drained: 0,
        quarantined: 0,
        panic_message: None,
    };
    let mut live = Some(shard);
    for batch in rx {
        let len = batch.len() as u64;
        match live.take() {
            Some(mut shard) => {
                match catch_unwind(AssertUnwindSafe(|| drain_batch(&mut shard, batch))) {
                    Ok(admitted) => {
                        out.admitted += admitted;
                        out.drained += len;
                        live = Some(shard);
                    }
                    Err(payload) => {
                        // The backend's internal invariants may be
                        // arbitrarily broken mid-unwind: poison it by
                        // dropping, and charge the whole batch as
                        // quarantined (any partial admissions die with
                        // the backend).
                        out.quarantined += len;
                        out.panic_message = Some(panic_message(payload));
                        drop(shard);
                    }
                }
            }
            None => out.quarantined += len,
        }
    }
    out.shard = live;
    out
}

impl<I, V, B> ShardedQMax<I, V, B>
where
    I: ShardKey + Send,
    V: Ord + Clone + Send,
    B: BatchInsert<I, V> + Send,
{
    /// Feeds `stream` through one worker thread per shard and returns a
    /// load/timing/failure report. The engine is fully usable (and
    /// queryable) afterwards: shards move into the workers for the run
    /// and move back when the stream is exhausted — and a shard whose
    /// worker panicked moves back as a *fresh, empty* backend stamped
    /// from the engine's stored factory, with the failure recorded in
    /// [`DriverReport::failures`].
    ///
    /// The producer thread routes ids to shards ([`ShardKey`] hash) and
    /// accumulates per-shard batches of `config.batch_size` items;
    /// workers apply the same Ψ-cached batch drain as
    /// [`ShardedQMax::insert_batch`]. Channels are bounded at
    /// `config.queue_depth` batches; a full queue either blocks the
    /// producer or sheds the batch, per `config.overload`.
    ///
    /// This method itself never panics on a shard failure: worker
    /// panics are caught, quarantined, and reported.
    pub fn run_threaded<S>(&mut self, stream: S, config: DriverConfig) -> DriverReport
    where
        S: Iterator<Item = (I, V)>,
    {
        let n = self.shard_count();
        let batch_size = config.batch_size.max(1);
        let queue_depth = config.queue_depth.max(1);
        let shards = self.take_shards();
        let router = self.router();
        let mut per_shard_items = vec![0u64; n];
        let mut per_shard_dropped = vec![0u64; n];
        // Items orphaned by a closed channel (worker died outside the
        // drain loop); folded into the quarantine bucket.
        let mut orphaned = vec![0u64; n];
        let start = Instant::now();
        let outcomes = thread::scope(|scope| {
            let mut senders = Vec::with_capacity(n);
            let mut handles = Vec::with_capacity(n);
            for shard in shards {
                let (tx, rx) = mpsc::sync_channel::<Vec<(I, V)>>(queue_depth);
                senders.push(tx);
                handles.push(scope.spawn(move || worker_loop(shard, rx)));
            }
            let dispatch =
                |s: usize, batch: Vec<(I, V)>, dropped: &mut [u64], orphaned: &mut [u64]| {
                    match config.overload {
                        OverloadPolicy::Block => {
                            if let Err(mpsc::SendError(lost)) = senders[s].send(batch) {
                                // The worker died without draining its
                                // channel; count and carry on — the other
                                // shards still want their sub-streams.
                                orphaned[s] += lost.len() as u64;
                            }
                        }
                        OverloadPolicy::Shed { max_dropped } => match senders[s].try_send(batch) {
                            Ok(()) => {}
                            Err(mpsc::TrySendError::Full(batch)) => {
                                if dropped[s] + batch.len() as u64 <= max_dropped {
                                    dropped[s] += batch.len() as u64;
                                } else if let Err(mpsc::SendError(lost)) = senders[s].send(batch) {
                                    orphaned[s] += lost.len() as u64;
                                }
                            }
                            Err(mpsc::TrySendError::Disconnected(lost)) => {
                                orphaned[s] += lost.len() as u64;
                            }
                        },
                    }
                };
            let mut buffers: Vec<Vec<(I, V)>> =
                (0..n).map(|_| Vec::with_capacity(batch_size)).collect();
            for (id, val) in stream {
                let s = router.route(&id);
                per_shard_items[s] += 1;
                buffers[s].push((id, val));
                if buffers[s].len() >= batch_size {
                    let full = std::mem::replace(&mut buffers[s], Vec::with_capacity(batch_size));
                    dispatch(s, full, &mut per_shard_dropped, &mut orphaned);
                }
            }
            for (s, buffer) in buffers.into_iter().enumerate() {
                if !buffer.is_empty() {
                    dispatch(s, buffer, &mut per_shard_dropped, &mut orphaned);
                }
            }
            // Closing the channels ends each worker's drain loop.
            drop(senders);
            handles
                .into_iter()
                .map(|handle| handle.join())
                .collect::<Vec<_>>()
        });
        let elapsed = start.elapsed();

        let mut returned = Vec::with_capacity(n);
        let mut per_shard_admitted = vec![0u64; n];
        let mut per_shard_drained = vec![0u64; n];
        let mut per_shard_quarantined = vec![0u64; n];
        let mut failures = Vec::new();
        let mut health = Vec::with_capacity(n);
        for (s, joined) in outcomes.into_iter().enumerate() {
            let outcome = match joined {
                Ok(outcome) => outcome,
                // The worker thread itself panicked outside the guarded
                // drain (a driver bug, not a backend bug) — treat every
                // unaccounted item as quarantined and rebuild anyway.
                Err(payload) => WorkerOutcome {
                    shard: None,
                    admitted: 0,
                    drained: 0,
                    quarantined: per_shard_items[s].saturating_sub(per_shard_dropped[s]),
                    panic_message: Some(panic_message(payload)),
                },
            };
            per_shard_admitted[s] = outcome.admitted;
            per_shard_drained[s] = outcome.drained;
            per_shard_quarantined[s] = outcome.quarantined + orphaned[s];
            match outcome.shard {
                Some(shard) => {
                    returned.push(shard);
                    health.push(ShardHealth::Healthy);
                }
                None => {
                    failures.push(ShardFailure {
                        shard: s,
                        message: outcome
                            .panic_message
                            .unwrap_or_else(|| "shard backend lost without a panic".to_string()),
                        items_lost: per_shard_quarantined[s],
                    });
                    returned.push(self.fresh_shard(s));
                    // Cold rebuild: the shard's conserved items are not
                    // represented until new arrivals repopulate it.
                    health.push(ShardHealth::Degraded);
                }
            }
        }
        self.restore_shards(returned);
        self.set_coverage(health, per_shard_drained.clone());
        let per_shard_backend = self.shard_backend_labels();
        DriverReport {
            items: per_shard_items.iter().sum(),
            elapsed,
            per_shard_items,
            per_shard_admitted,
            per_shard_drained,
            per_shard_dropped,
            per_shard_quarantined,
            per_shard_recovered: vec![0; n],
            failures,
            per_shard_backend,
            lifecycle: ShardLifecycle::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{silence_fault_panics, FaultSchedule, FaultyBackend};
    use crate::sharded::ShardedQMax;
    use qmax_core::DeamortizedQMax;
    use qmax_traces::gen::{caida_like, random_u64_stream};

    fn sorted_vals(qm: &mut impl QMax<u64, u64>) -> Vec<u64> {
        let mut v: Vec<u64> = qm.query().into_iter().map(|(_, v)| v).collect();
        v.sort_unstable();
        v
    }

    fn assert_balanced(report: &DriverReport) {
        for s in 0..report.per_shard_items.len() {
            assert_eq!(
                report.per_shard_items[s],
                report.per_shard_drained[s]
                    + report.per_shard_dropped[s]
                    + report.per_shard_quarantined[s],
                "shard {s} accounting does not balance: {report:?}"
            );
            assert!(report.per_shard_admitted[s] <= report.per_shard_drained[s]);
        }
    }

    #[test]
    fn threaded_run_matches_sequential_inserts() {
        let items: Vec<(u64, u64)> = random_u64_stream(60_000, 21)
            .enumerate()
            .map(|(i, v)| (i as u64, v))
            .collect();
        let q = 128;
        for shards in [1usize, 2, 4] {
            let mut threaded: ShardedQMax<u64, u64> = ShardedQMax::new(q, 0.25, shards);
            let report = threaded.run_threaded(items.iter().copied(), DriverConfig::default());
            assert_eq!(report.items, items.len() as u64);
            assert_eq!(report.per_shard_items.len(), shards);
            assert!(report.failures.is_empty());
            assert_eq!(report.dropped() + report.quarantined(), 0);
            assert_balanced(&report);
            let mut sequential: ShardedQMax<u64, u64> = ShardedQMax::new(q, 0.25, shards);
            for &(id, v) in &items {
                sequential.insert(id, v);
            }
            assert_eq!(
                sorted_vals(&mut threaded),
                sorted_vals(&mut sequential),
                "threaded result diverged at {shards} shards"
            );
        }
    }

    #[test]
    fn report_accounts_for_all_items() {
        let mut engine: ShardedQMax<u64, u64> = ShardedQMax::new(32, 0.5, 4);
        let items: Vec<(u64, u64)> = caida_like(50_000, 8)
            .map(|p| (p.flow().as_u64(), p.len as u64))
            .collect();
        let report = engine.run_threaded(items.into_iter(), DriverConfig::default());
        assert_eq!(report.items, 50_000);
        assert_eq!(report.per_shard_items.iter().sum::<u64>(), 50_000);
        assert_balanced(&report);
        let agg = engine.aggregate_stats();
        assert_eq!(agg.admitted, report.per_shard_admitted.iter().sum::<u64>());
        assert!(report.throughput_mips() > 0.0);
        assert!(report.max_load_factor() >= 1.0);
        assert_eq!(report.per_shard_backend, vec!["qmax-deamortized"; 4]);
    }

    #[test]
    fn engine_remains_usable_after_threaded_run() {
        let mut engine: ShardedQMax<u64, u64> = ShardedQMax::new(8, 0.5, 2);
        let items: Vec<(u64, u64)> = (0..10_000u64).map(|i| (i, i)).collect();
        engine.run_threaded(items.into_iter(), DriverConfig::default());
        // Post-run inserts land in the same structure.
        engine.insert(999_999, 1_000_000);
        let mut top = sorted_vals(&mut engine);
        assert_eq!(top.pop(), Some(1_000_000));
        assert_eq!(top.pop(), Some(9_999));
    }

    #[test]
    fn tiny_batches_and_shallow_queues_still_agree() {
        let items: Vec<(u64, u64)> = random_u64_stream(5_000, 33)
            .enumerate()
            .map(|(i, v)| (i as u64, v))
            .collect();
        let q = 16;
        let mut a: ShardedQMax<u64, u64> = ShardedQMax::new(q, 0.5, 3);
        a.run_threaded(
            items.iter().copied(),
            DriverConfig {
                batch_size: 1,
                queue_depth: 1,
                overload: OverloadPolicy::Block,
                ..DriverConfig::default()
            },
        );
        let mut b: ShardedQMax<u64, u64> = ShardedQMax::new(q, 0.5, 3);
        b.insert_batch(&items);
        assert_eq!(sorted_vals(&mut a), sorted_vals(&mut b));
    }

    #[test]
    fn panicking_shard_is_quarantined_and_rebuilt() {
        let _silence = silence_fault_panics();
        let q = 32;
        let mut engine: ShardedQMax<u64, u64, FaultyBackend<DeamortizedQMax<u64, u64>>> =
            ShardedQMax::with_backends(q, 3, move |s| {
                // FaultyBackend counts every offered item (its
                // insert_batch loops over insert), so panic_at(50)
                // fires early in shard 1's sub-stream.
                let schedule = if s == 1 {
                    FaultSchedule::panic_at(50)
                } else {
                    FaultSchedule::none()
                };
                FaultyBackend::new(DeamortizedQMax::new(q, 0.25), schedule)
            });
        let items: Vec<(u64, u64)> = random_u64_stream(20_000, 7)
            .enumerate()
            .map(|(i, v)| (i as u64, v))
            .collect();
        let report = engine.run_threaded(items.iter().copied(), DriverConfig::default());
        assert_eq!(report.failures.len(), 1);
        assert_eq!(report.failures[0].shard, 1);
        assert!(report.failures[0].message.contains("fault-injected"));
        assert_eq!(
            report.per_shard_quarantined[1],
            report.failures[0].items_lost
        );
        assert!(report.per_shard_quarantined[1] > 0);
        assert!(!report.is_healthy(1));
        assert_eq!(report.healthy_shards(), vec![0, 2]);
        assert_balanced(&report);
        // The rebuilt slot is empty but live: the engine answers queries
        // and accepts new items for shard 1.
        assert!(engine.shards()[1].is_empty());
        let top = engine.query();
        assert!(!top.is_empty());
    }

    #[test]
    fn shedding_bounds_loss_and_balances_accounting() {
        let q = 16;
        let budget = 2_000u64;
        let mut engine: ShardedQMax<u64, u64, FaultyBackend<DeamortizedQMax<u64, u64>>> =
            ShardedQMax::with_backends(q, 2, move |s| {
                let schedule = if s == 0 {
                    // Slow shard 0 down so its queue actually fills.
                    FaultSchedule::stall_every(256, 2)
                } else {
                    FaultSchedule::none()
                };
                FaultyBackend::new(DeamortizedQMax::new(q, 0.5), schedule)
            });
        let items: Vec<(u64, u64)> = random_u64_stream(40_000, 99)
            .enumerate()
            .map(|(i, v)| (i as u64, v))
            .collect();
        let report = engine.run_threaded(
            items.iter().copied(),
            DriverConfig {
                batch_size: 64,
                queue_depth: 1,
                overload: OverloadPolicy::Shed {
                    max_dropped: budget,
                },
                ..DriverConfig::default()
            },
        );
        assert!(report.failures.is_empty());
        for &d in &report.per_shard_dropped {
            assert!(d <= budget, "shed {d} items, budget {budget}");
        }
        assert_balanced(&report);
    }

    #[test]
    fn max_load_factor_ignores_quarantined_shards() {
        let report = DriverReport {
            items: 300,
            elapsed: Duration::from_millis(1),
            per_shard_items: vec![100, 150, 50],
            per_shard_admitted: vec![10, 0, 5],
            per_shard_drained: vec![100, 20, 50],
            per_shard_dropped: vec![0, 0, 0],
            per_shard_quarantined: vec![0, 130, 0],
            per_shard_recovered: vec![0, 0, 0],
            failures: vec![ShardFailure {
                shard: 1,
                message: "boom".into(),
                items_lost: 130,
            }],
            per_shard_backend: vec!["qmax-deamortized"; 3],
            lifecycle: ShardLifecycle::default(),
        };
        // Healthy shards carry 100 and 50 items: mean 75, max 100.
        assert!((report.max_load_factor() - 100.0 / 75.0).abs() < 1e-12);

        // A single healthy shard is perfectly balanced by definition.
        let one_left = DriverReport {
            per_shard_items: vec![100, 150],
            per_shard_admitted: vec![10, 0],
            per_shard_drained: vec![100, 0],
            per_shard_quarantined: vec![0, 150],
            failures: vec![ShardFailure {
                shard: 1,
                message: "boom".into(),
                items_lost: 150,
            }],
            items: 250,
            elapsed: Duration::from_millis(1),
            per_shard_dropped: vec![0, 0],
            per_shard_recovered: vec![0, 0],
            per_shard_backend: vec!["qmax-deamortized"; 2],
            lifecycle: ShardLifecycle::default(),
        };
        assert_eq!(one_left.max_load_factor(), 1.0);

        // All shards quarantined: no load to balance.
        let none_left = DriverReport {
            per_shard_items: vec![100],
            per_shard_admitted: vec![0],
            per_shard_drained: vec![0],
            per_shard_quarantined: vec![100],
            failures: vec![ShardFailure {
                shard: 0,
                message: "boom".into(),
                items_lost: 100,
            }],
            items: 100,
            elapsed: Duration::from_millis(1),
            per_shard_dropped: vec![0],
            per_shard_recovered: vec![0],
            per_shard_backend: vec!["qmax-deamortized"],
            lifecycle: ShardLifecycle::default(),
        };
        assert_eq!(none_left.max_load_factor(), 0.0);
    }
}
