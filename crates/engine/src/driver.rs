//! Multi-threaded shard driver: one worker thread per shard, fed with
//! pre-routed batches over lock-free SPSC [`ring`](crate::ring)
//! buffers.
//!
//! This is the software analogue of the paper's per-PMD deployment: the
//! producer plays the NIC's RSS stage (hash each id, append to the
//! target shard's batch), workers play PMD threads (drain batches into
//! their private reservoir), and nothing is shared between workers, so
//! there is no locking on the per-item hot path — including the
//! cross-thread handoff itself, which publishes whole owned batches
//! with a pair of Acquire/Release edges instead of the
//! mutex-and-condvar machinery of `std::sync::mpsc` (the mpsc-era
//! driver survives as [`ShardedQMax::run_threaded_mpsc`], the
//! reference the differential battery and the contention bench compare
//! against). [`ShardedQMax::run_threaded_partitioned`] extends the
//! layout to P ingestion threads: one ring per (producer × shard), so
//! producers never share a queue either.
//!
//! # Fault tolerance
//!
//! A measurement data plane must not take down the forwarding plane it
//! observes, so the driver isolates shard failures instead of
//! propagating them:
//!
//! * **Panic isolation** — every batch drain runs under
//!   [`std::panic::catch_unwind`]. A panicking shard is *quarantined*:
//!   its poisoned backend is dropped, the remainder of its sub-stream is
//!   drained off the ring and counted (never processed), and the
//!   other `S − 1` workers keep running untouched. After the run the
//!   quarantined slot is rebuilt empty from the engine's stored backend
//!   factory, so the engine stays queryable — exactly the per-PMD
//!   independence argument: one instance restarting never stalls the
//!   others.
//! * **Load shedding** — [`OverloadPolicy::Shed`] switches the producer
//!   from bounded-spin blocking pushes to `try_push` with a bounded
//!   per-shard drop budget, trading bounded loss for producer latency
//!   when a shard falls behind (a stalled PMD sheds packets; it does
//!   not stall RSS). Both policies are expressed in ring-occupancy
//!   terms: *full ring* is the overload condition.
//! * **Failure accounting** — [`DriverReport`] balances every routed
//!   item into drained, shed, or quarantined, and lists each failure as
//!   a [`ShardFailure`] with the captured panic message.
//! * **Backpressure observability** —
//!   [`DriverReport::per_shard_ring_high_water`] records the peak ring
//!   occupancy each shard's producer saw; a shard pinned at
//!   [`DriverReport::ring_capacity`] was the bottleneck (stalled, or
//!   simply slower than the stream).

use crate::ring;
use crate::shard_key::ShardKey;
use crate::sharded::{ShardHealth, ShardedQMax};
use crate::supervisor::{ShardLifecycle, WatchdogConfig};
use qmax_core::BatchInsert;
#[cfg(test)]
use qmax_core::QMax;
use std::any::Any;

/// One batch-carrying SPSC lane, seen from each end (the driver only
/// ever moves whole admitted batches across threads).
type BatchProducer<I, V> = ring::Producer<Vec<(I, V)>>;
type BatchConsumer<I, V> = ring::Consumer<Vec<(I, V)>>;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::thread;
use std::time::{Duration, Instant};

/// What the producer does when a shard's ring is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverloadPolicy {
    /// Wait (bounded spin, then yield) until the worker frees a slot
    /// (lossless backpressure; a slow shard throttles the whole
    /// stream). The default.
    Block,
    /// Drop the batch instead of waiting, up to `max_dropped` items
    /// per shard; once a shard's drop budget is spent the producer
    /// falls back to blocking pushes for it, so the loss is bounded.
    Shed {
        /// Per-shard shed budget in items.
        max_dropped: u64,
    },
}

/// Tuning knobs for [`ShardedQMax::run_threaded`].
#[derive(Debug, Clone, Copy)]
pub struct DriverConfig {
    /// Items per batch handed to a worker (amortizes handoff overhead;
    /// the paper's shared-memory blocks play the same role).
    pub batch_size: usize,
    /// Ring capacity: bounded in-flight batches per ring before the
    /// overload policy applies (backpressure instead of unbounded
    /// queueing).
    pub queue_depth: usize,
    /// Producer behavior when a worker's ring is full.
    pub overload: OverloadPolicy,
    /// Checkpoint cadence for [`ShardedQMax::run_supervised`], in
    /// drained items per shard (snapshots are taken at batch
    /// boundaries, so the effective interval is rounded up to the next
    /// batch). `None` disables checkpointing: panics fall back to the
    /// cold PR 4 quarantine path. Ignored by
    /// [`ShardedQMax::run_threaded`].
    pub checkpoint_every: Option<u64>,
    /// Stall-watchdog and restart policy for
    /// [`ShardedQMax::run_supervised`]. `None` disables stall
    /// detection (panic recovery then uses [`WatchdogConfig::default`]
    /// for its restart budget and backoff). Ignored by
    /// [`ShardedQMax::run_threaded`].
    pub watchdog: Option<WatchdogConfig>,
    /// Pin worker thread `s` to core `s mod available_parallelism`
    /// (and, for [`ShardedQMax::run_threaded_partitioned`], producer
    /// `p` to core `(S + p) mod available_parallelism`) via
    /// [`ring::pin_current_thread`]. Off by default; a no-op on
    /// platforms without `sched_setaffinity`. Useful only when cores ≥
    /// threads — on an oversubscribed box pinning serializes the
    /// pipeline.
    pub pin_threads: bool,
}

impl Default for DriverConfig {
    fn default() -> Self {
        DriverConfig {
            batch_size: 1024,
            queue_depth: 8,
            overload: OverloadPolicy::Block,
            checkpoint_every: None,
            watchdog: None,
            pin_threads: false,
        }
    }
}

/// One quarantined shard: which worker panicked, why, and what it cost.
#[derive(Debug, Clone)]
pub struct ShardFailure {
    /// Index of the shard whose worker panicked.
    pub shard: usize,
    /// The captured panic message (`"non-string panic payload"` when the
    /// payload was neither `&str` nor `String`).
    pub message: String,
    /// Items routed to the shard but never processed: the batch that
    /// panicked plus everything drained-and-dropped afterwards. Items
    /// the shard processed *before* panicking are also discarded with
    /// the poisoned backend, but are counted under
    /// [`DriverReport::per_shard_drained`], not here.
    pub items_lost: u64,
}

/// What a threaded run did: per-shard load, loss accounting, failures,
/// backpressure high-water marks, and aggregate timing.
///
/// Every routed item lands in exactly one bucket per shard:
/// `per_shard_items[s] == per_shard_drained[s] + per_shard_dropped[s]
/// + per_shard_quarantined[s]`.
#[derive(Debug, Clone)]
pub struct DriverReport {
    /// Total items routed.
    pub items: u64,
    /// Wall-clock time from first route to last worker joining.
    pub elapsed: Duration,
    /// Items routed to each shard.
    pub per_shard_items: Vec<u64>,
    /// Items each shard's backend admitted (survived both the batched
    /// pre-filter and the backend's own threshold check).
    pub per_shard_admitted: Vec<u64>,
    /// Items each shard's worker actually processed (admitted or
    /// filtered by the backend).
    pub per_shard_drained: Vec<u64>,
    /// Items shed by the producer under [`OverloadPolicy::Shed`]
    /// because the shard's ring was full and budget remained.
    pub per_shard_dropped: Vec<u64>,
    /// Items routed to a shard but never processed because the shard
    /// was quarantined (its worker panicked, or its ring closed
    /// early).
    pub per_shard_quarantined: Vec<u64>,
    /// Candidate entries re-adopted from checkpoints by warm restores
    /// of each shard (always zero for [`ShardedQMax::run_threaded`],
    /// which recovers cold). Entries restore exactly once per recovery:
    /// [`qmax_core::Checkpoint::restore`] overwrites, never merges.
    pub per_shard_recovered: Vec<u64>,
    /// Peak ring occupancy (in-flight batches) each shard's
    /// producer(s) ever observed, counting rejected pushes against a
    /// full ring. The backpressure signal: a shard pinned at
    /// [`Self::ring_capacity`] stopped keeping up with its sub-stream
    /// (overloaded, stalled, or quarantined). For
    /// [`ShardedQMax::run_threaded_partitioned`] this is the max over
    /// the shard's per-producer rings; for
    /// [`ShardedQMax::run_supervised`] it folds across worker
    /// generations. All zeros for the mpsc reference driver.
    pub per_shard_ring_high_water: Vec<u64>,
    /// Ring capacity in batches ([`DriverConfig::queue_depth`]) the
    /// run used — the ceiling of
    /// [`Self::per_shard_ring_high_water`]. 0 for the mpsc reference
    /// driver, which has no rings.
    pub ring_capacity: u64,
    /// One entry per quarantined shard, in shard order.
    pub failures: Vec<ShardFailure>,
    /// Each shard's [`qmax_core::QMax::backend_label`] after the run
    /// (a quarantined shard reports its rebuilt backend's label) —
    /// surfaces which layout the adaptive backend policy chose per
    /// shard.
    pub per_shard_backend: Vec<&'static str>,
    /// Supervision state transitions recorded during the run (empty for
    /// [`ShardedQMax::run_threaded`], which has no supervisor).
    pub lifecycle: ShardLifecycle,
}

impl DriverReport {
    /// Aggregate insert throughput in millions of items per second.
    pub fn throughput_mips(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.items as f64 / self.elapsed.as_secs_f64() / 1e6
    }

    /// Total items shed by the producer across shards.
    pub fn dropped(&self) -> u64 {
        self.per_shard_dropped.iter().sum()
    }

    /// Total items lost to quarantined shards across the run.
    pub fn quarantined(&self) -> u64 {
        self.per_shard_quarantined.iter().sum()
    }

    /// Total candidate entries re-adopted from checkpoints by warm
    /// restores across shards.
    pub fn recovered(&self) -> u64 {
        self.per_shard_recovered.iter().sum()
    }

    /// Whether shard `s`'s producer ever saw its ring pinned at
    /// capacity — the occupancy-level statement of "this shard fell
    /// behind". Always `false` for the mpsc reference driver.
    pub fn saturated(&self, s: usize) -> bool {
        self.ring_capacity > 0 && self.per_shard_ring_high_water[s] >= self.ring_capacity
    }

    /// Whether shard `s` finished the run un-quarantined.
    pub fn is_healthy(&self, s: usize) -> bool {
        !self.failures.iter().any(|f| f.shard == s)
    }

    /// Indices of shards that finished the run un-quarantined.
    pub fn healthy_shards(&self) -> Vec<usize> {
        (0..self.per_shard_items.len())
            .filter(|&s| self.is_healthy(s))
            .collect()
    }

    /// Load-balance quality over *healthy* shards: most-loaded healthy
    /// shard relative to the healthy mean (1.0 = perfectly balanced;
    /// the pool's throughput is limited by the most loaded surviving
    /// worker, exactly as with PMD threads). Quarantined shards are
    /// excluded — a dead worker neither carries load nor bounds
    /// throughput. 0.0 when every shard was quarantined or no items
    /// flowed; exactly 1.0 when a single healthy shard remains.
    pub fn max_load_factor(&self) -> f64 {
        let healthy: Vec<u64> = self
            .per_shard_items
            .iter()
            .enumerate()
            .filter(|&(s, _)| self.is_healthy(s))
            .map(|(_, &n)| n)
            .collect();
        if healthy.is_empty() {
            return 0.0;
        }
        let max = healthy.iter().copied().max().unwrap_or(0) as f64;
        let mean = healthy.iter().sum::<u64>() as f64 / healthy.len() as f64;
        if mean == 0.0 {
            0.0
        } else {
            max / mean
        }
    }
}

/// Drains a whole owned batch into one shard via the backend's own
/// [`BatchInsert`] path: the worker-side half of the batched hot path.
/// SoA backends route this through the vectorized Ψ-filter admit
/// kernel; the default implementation degrades to the same Ψ-cached
/// singleton loop the driver used to inline here.
pub(crate) fn drain_batch<I, V: Ord, B: BatchInsert<I, V>>(
    shard: &mut B,
    batch: Vec<(I, V)>,
) -> u64 {
    shard.insert_batch(&batch) as u64
}

/// Renders a caught panic payload as the message string panics carry in
/// practice (`panic!("…")` yields `&str` or `String`).
pub(crate) fn panic_message(payload: Box<dyn Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// What one worker thread hands back when its ring(s) close.
struct WorkerOutcome<B> {
    /// The backend, unless it was poisoned by a panic and dropped.
    shard: Option<B>,
    /// Items admitted by the backend.
    admitted: u64,
    /// Items processed by the backend (admitted or filtered).
    drained: u64,
    /// Items received but never processed (the panicking batch plus
    /// everything drained-and-dropped after the panic).
    quarantined: u64,
    /// The first panic's message, if any.
    panic_message: Option<String>,
}

/// The per-batch drain state shared by every worker-loop shape: drains
/// under `catch_unwind`, and on a panic drops the poisoned backend but
/// keeps accepting batches (counted as quarantined) so the producer
/// never waits on a ring nobody drains.
struct DrainState<B> {
    live: Option<B>,
    admitted: u64,
    drained: u64,
    quarantined: u64,
    panic_message: Option<String>,
}

impl<B> DrainState<B> {
    fn new(shard: B) -> Self {
        DrainState {
            live: Some(shard),
            admitted: 0,
            drained: 0,
            quarantined: 0,
            panic_message: None,
        }
    }

    fn take<I, V: Ord>(&mut self, batch: Vec<(I, V)>)
    where
        B: BatchInsert<I, V>,
    {
        let len = batch.len() as u64;
        match self.live.take() {
            Some(mut shard) => {
                match catch_unwind(AssertUnwindSafe(|| drain_batch(&mut shard, batch))) {
                    Ok(admitted) => {
                        self.admitted += admitted;
                        self.drained += len;
                        self.live = Some(shard);
                    }
                    Err(payload) => {
                        // The backend's internal invariants may be
                        // arbitrarily broken mid-unwind: poison it by
                        // dropping, and charge the whole batch as
                        // quarantined (any partial admissions die with
                        // the backend).
                        self.quarantined += len;
                        self.panic_message = Some(panic_message(payload));
                        drop(shard);
                    }
                }
            }
            None => self.quarantined += len,
        }
    }

    fn finish(self) -> WorkerOutcome<B> {
        WorkerOutcome {
            shard: self.live,
            admitted: self.admitted,
            drained: self.drained,
            quarantined: self.quarantined,
            panic_message: self.panic_message,
        }
    }
}

/// One worker's drain loop over a single SPSC ring: spin-then-park on
/// emptiness ([`ring::Consumer::recv`]), end when the producer closes.
fn worker_loop<I, V: Ord, B: BatchInsert<I, V>>(
    shard: B,
    mut rx: ring::Consumer<Vec<(I, V)>>,
    pin_core: Option<usize>,
) -> WorkerOutcome<B> {
    if let Some(core) = pin_core {
        ring::pin_current_thread(core);
    }
    let mut state = DrainState::new(shard);
    while let Some(batch) = rx.recv() {
        state.take(batch);
    }
    state.finish()
}

/// One worker's drain loop over P producer rings (the partitioned
/// layout): sweep the open rings, retire each once it is closed *and*
/// drained, and back off (yield, then short sleep) on an idle sweep —
/// parking is per-ring, so a multi-ring consumer polls instead.
fn worker_loop_multi<I, V: Ord, B: BatchInsert<I, V>>(
    shard: B,
    mut rings: Vec<ring::Consumer<Vec<(I, V)>>>,
    pin_core: Option<usize>,
) -> WorkerOutcome<B> {
    if let Some(core) = pin_core {
        ring::pin_current_thread(core);
    }
    let mut state = DrainState::new(shard);
    let mut idle = 0u32;
    while !rings.is_empty() {
        let mut progressed = false;
        rings.retain_mut(|rx| {
            while let Some(batch) = rx.try_pop() {
                progressed = true;
                state.take(batch);
            }
            if !rx.is_closed() {
                return true;
            }
            // Close is published after the producer's last push, so one
            // more drain after observing it empties the ring for good.
            while let Some(batch) = rx.try_pop() {
                progressed = true;
                state.take(batch);
            }
            false
        });
        if progressed {
            idle = 0;
        } else {
            idle = idle.saturating_add(1);
            if idle < 16 {
                thread::yield_now();
            } else {
                thread::sleep(Duration::from_micros(50));
            }
        }
    }
    state.finish()
}

/// Producer-side push of one batch under the overload policy.
/// `dropped`/`orphaned` are item counts per shard; the shed budget is
/// an atomic so partitioned producers share one budget per shard.
fn dispatch_ring<I, V>(
    tx: &mut ring::Producer<Vec<(I, V)>>,
    batch: Vec<(I, V)>,
    overload: OverloadPolicy,
    dropped: &AtomicU64,
    orphaned: &mut u64,
) {
    let len = batch.len() as u64;
    match overload {
        OverloadPolicy::Block => {
            if tx.push_wait(batch).is_err() {
                // The worker died without draining its ring; count and
                // carry on — the other shards still want their
                // sub-streams.
                *orphaned += len;
            }
        }
        OverloadPolicy::Shed { max_dropped } => match tx.try_push(batch) {
            Ok(()) => {}
            Err(batch) => {
                if tx.consumer_gone() {
                    *orphaned += len;
                } else if claim_shed_budget(dropped, len, max_dropped) {
                    // Counted into the shared per-shard drop budget.
                } else if tx.push_wait(batch).is_err() {
                    *orphaned += len;
                }
            }
        },
    }
}

/// Atomically claims `len` items of a shard's shed budget; `false`
/// when the claim would overshoot `max_dropped` (the caller must then
/// fall back to a blocking push, keeping the loss bound exact).
fn claim_shed_budget(dropped: &AtomicU64, len: u64, max_dropped: u64) -> bool {
    dropped
        .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| {
            cur.checked_add(len).filter(|&next| next <= max_dropped)
        })
        .is_ok()
}

/// Worker core assignment under [`DriverConfig::pin_threads`].
pub(crate) fn pin_plan(pin: bool, index: usize) -> Option<usize> {
    if !pin {
        return None;
    }
    let cores = thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    Some(index % cores)
}

impl<I, V, B> ShardedQMax<I, V, B>
where
    I: ShardKey + Send,
    V: Ord + Clone + Send,
    B: BatchInsert<I, V> + Send,
{
    /// Feeds `stream` through one worker thread per shard and returns a
    /// load/timing/failure report. The engine is fully usable (and
    /// queryable) afterwards: shards move into the workers for the run
    /// and move back when the stream is exhausted — and a shard whose
    /// worker panicked moves back as a *fresh, empty* backend stamped
    /// from the engine's stored factory, with the failure recorded in
    /// [`DriverReport::failures`].
    ///
    /// The producer thread routes ids to shards ([`ShardKey`] hash) and
    /// accumulates per-shard batches of `config.batch_size` items;
    /// workers apply the same Ψ-cached batch drain as
    /// [`ShardedQMax::insert_batch`]. Each shard is fed over a
    /// lock-free SPSC [`ring`](crate::ring) bounded at
    /// `config.queue_depth` batches; a full ring either blocks the
    /// producer (bounded spin, then yield) or sheds the batch, per
    /// `config.overload`.
    ///
    /// This method itself never panics on a shard failure: worker
    /// panics are caught, quarantined, and reported.
    pub fn run_threaded<S>(&mut self, stream: S, config: DriverConfig) -> DriverReport
    where
        S: Iterator<Item = (I, V)>,
    {
        let n = self.shard_count();
        let batch_size = config.batch_size.max(1);
        let queue_depth = config.queue_depth.max(1);
        let shards = self.take_shards();
        let router = self.router();
        let mut per_shard_items = vec![0u64; n];
        let dropped: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        // Items orphaned by a dead consumer (worker died outside the
        // drain loop); folded into the quarantine bucket.
        let mut orphaned = vec![0u64; n];
        let start = Instant::now();
        let (outcomes, high_water) = thread::scope(|scope| {
            let mut producers = Vec::with_capacity(n);
            let mut handles = Vec::with_capacity(n);
            for (s, shard) in shards.into_iter().enumerate() {
                let (tx, rx) = ring::ring::<Vec<(I, V)>>(queue_depth);
                producers.push(tx);
                let pin = pin_plan(config.pin_threads, s);
                handles.push(scope.spawn(move || worker_loop(shard, rx, pin)));
            }
            let mut buffers: Vec<Vec<(I, V)>> =
                (0..n).map(|_| Vec::with_capacity(batch_size)).collect();
            for (id, val) in stream {
                let s = router.route(&id);
                per_shard_items[s] += 1;
                buffers[s].push((id, val));
                if buffers[s].len() >= batch_size {
                    let full = std::mem::replace(&mut buffers[s], Vec::with_capacity(batch_size));
                    dispatch_ring(
                        &mut producers[s],
                        full,
                        config.overload,
                        &dropped[s],
                        &mut orphaned[s],
                    );
                }
            }
            for (s, buffer) in buffers.into_iter().enumerate() {
                if !buffer.is_empty() {
                    dispatch_ring(
                        &mut producers[s],
                        buffer,
                        config.overload,
                        &dropped[s],
                        &mut orphaned[s],
                    );
                }
            }
            // Read the backpressure peaks, then close the rings
            // (dropping the producers) to end each worker's drain loop.
            let high_water: Vec<u64> = producers.iter().map(|p| p.high_water()).collect();
            drop(producers);
            let outcomes = handles
                .into_iter()
                .map(|handle| handle.join())
                .collect::<Vec<_>>();
            (outcomes, high_water)
        });
        let elapsed = start.elapsed();
        let per_shard_dropped: Vec<u64> =
            dropped.iter().map(|d| d.load(Ordering::Relaxed)).collect();
        self.reassemble(
            ReportInputs {
                per_shard_items,
                per_shard_dropped,
                orphaned,
                per_shard_ring_high_water: high_water,
                ring_capacity: queue_depth as u64,
                elapsed,
            },
            outcomes,
        )
    }

    /// The mpsc-era driver, retained verbatim as the reference
    /// implementation the ring driver is differentially tested and
    /// benchmarked against: identical routing, batching, overload, and
    /// quarantine semantics over `std::sync::mpsc` bounded channels
    /// (mutex-and-condvar handoff). It reports no ring stats
    /// ([`DriverReport::ring_capacity`] = 0) and ignores
    /// [`DriverConfig::pin_threads`]. New code wants
    /// [`ShardedQMax::run_threaded`].
    pub fn run_threaded_mpsc<S>(&mut self, stream: S, config: DriverConfig) -> DriverReport
    where
        S: Iterator<Item = (I, V)>,
    {
        let n = self.shard_count();
        let batch_size = config.batch_size.max(1);
        let queue_depth = config.queue_depth.max(1);
        let shards = self.take_shards();
        let router = self.router();
        let mut per_shard_items = vec![0u64; n];
        let mut per_shard_dropped = vec![0u64; n];
        let mut orphaned = vec![0u64; n];
        let start = Instant::now();
        let outcomes = thread::scope(|scope| {
            let mut senders = Vec::with_capacity(n);
            let mut handles = Vec::with_capacity(n);
            for shard in shards {
                let (tx, rx) = mpsc::sync_channel::<Vec<(I, V)>>(queue_depth);
                senders.push(tx);
                handles.push(scope.spawn(move || {
                    let mut state = DrainState::new(shard);
                    for batch in rx {
                        state.take(batch);
                    }
                    state.finish()
                }));
            }
            let dispatch =
                |s: usize, batch: Vec<(I, V)>, dropped: &mut [u64], orphaned: &mut [u64]| {
                    match config.overload {
                        OverloadPolicy::Block => {
                            if let Err(mpsc::SendError(lost)) = senders[s].send(batch) {
                                orphaned[s] += lost.len() as u64;
                            }
                        }
                        OverloadPolicy::Shed { max_dropped } => match senders[s].try_send(batch) {
                            Ok(()) => {}
                            Err(mpsc::TrySendError::Full(batch)) => {
                                if dropped[s] + batch.len() as u64 <= max_dropped {
                                    dropped[s] += batch.len() as u64;
                                } else if let Err(mpsc::SendError(lost)) = senders[s].send(batch) {
                                    orphaned[s] += lost.len() as u64;
                                }
                            }
                            Err(mpsc::TrySendError::Disconnected(lost)) => {
                                orphaned[s] += lost.len() as u64;
                            }
                        },
                    }
                };
            let mut buffers: Vec<Vec<(I, V)>> =
                (0..n).map(|_| Vec::with_capacity(batch_size)).collect();
            for (id, val) in stream {
                let s = router.route(&id);
                per_shard_items[s] += 1;
                buffers[s].push((id, val));
                if buffers[s].len() >= batch_size {
                    let full = std::mem::replace(&mut buffers[s], Vec::with_capacity(batch_size));
                    dispatch(s, full, &mut per_shard_dropped, &mut orphaned);
                }
            }
            for (s, buffer) in buffers.into_iter().enumerate() {
                if !buffer.is_empty() {
                    dispatch(s, buffer, &mut per_shard_dropped, &mut orphaned);
                }
            }
            // Closing the channels ends each worker's drain loop.
            drop(senders);
            handles
                .into_iter()
                .map(|handle| handle.join())
                .collect::<Vec<_>>()
        });
        let elapsed = start.elapsed();
        self.reassemble(
            ReportInputs {
                per_shard_items,
                per_shard_dropped,
                orphaned,
                per_shard_ring_high_water: vec![0; n],
                ring_capacity: 0,
                elapsed,
            },
            outcomes,
        )
    }

    /// The P-producer layout: `streams.len()` ingestion threads, each
    /// routing its own sub-stream over a private SPSC ring per shard
    /// (P × S rings total — "one producer slot per ingestion thread ×
    /// shard"), so neither producers nor workers ever share a queue.
    /// Workers sweep their P rings (poll + backoff; per-ring parking
    /// does not compose across producers). Under
    /// [`OverloadPolicy::Shed`] the per-shard drop budget is shared
    /// across producers through one atomic, so the loss bound is
    /// per-shard, not per-(producer × shard).
    /// [`DriverReport::per_shard_ring_high_water`] is the max over a
    /// shard's P rings.
    ///
    /// The merged result is exact: q-MAX keeps the exact top-q, which
    /// is insensitive to the interleaving of the P sub-streams.
    pub fn run_threaded_partitioned<S>(
        &mut self,
        streams: Vec<S>,
        config: DriverConfig,
    ) -> DriverReport
    where
        S: Iterator<Item = (I, V)> + Send,
    {
        let n = self.shard_count();
        let nprod = streams.len().max(1);
        let batch_size = config.batch_size.max(1);
        let queue_depth = config.queue_depth.max(1);
        let shards = self.take_shards();
        let router = self.router();
        let dropped: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        let start = Instant::now();
        let (outcomes, per_shard_items, orphaned, high_water) = thread::scope(|scope| {
            // rings[p][s]: producer p's private lane into shard s.
            let mut producer_lanes: Vec<Vec<BatchProducer<I, V>>> =
                (0..nprod).map(|_| Vec::with_capacity(n)).collect();
            let mut consumer_lanes: Vec<Vec<BatchConsumer<I, V>>> =
                (0..n).map(|_| Vec::with_capacity(nprod)).collect();
            for lanes in producer_lanes.iter_mut() {
                for consumers in consumer_lanes.iter_mut() {
                    let (tx, rx) = ring::ring::<Vec<(I, V)>>(queue_depth);
                    lanes.push(tx);
                    consumers.push(rx);
                }
            }
            let mut handles = Vec::with_capacity(n);
            for (s, (rings, shard)) in consumer_lanes.into_iter().zip(shards).enumerate() {
                let pin = pin_plan(config.pin_threads, s);
                handles.push(scope.spawn(move || worker_loop_multi(shard, rings, pin)));
            }
            let producer_handles: Vec<_> = streams
                .into_iter()
                .zip(producer_lanes)
                .enumerate()
                .map(|(p, (stream, mut lanes))| {
                    let router = &router;
                    let dropped = &dropped;
                    let pin = pin_plan(config.pin_threads, n + p);
                    scope.spawn(move || {
                        if let Some(core) = pin {
                            ring::pin_current_thread(core);
                        }
                        let mut items = vec![0u64; n];
                        let mut orphaned = vec![0u64; n];
                        let mut buffers: Vec<Vec<(I, V)>> =
                            (0..n).map(|_| Vec::with_capacity(batch_size)).collect();
                        for (id, val) in stream {
                            let s = router.route(&id);
                            items[s] += 1;
                            buffers[s].push((id, val));
                            if buffers[s].len() >= batch_size {
                                let full = std::mem::replace(
                                    &mut buffers[s],
                                    Vec::with_capacity(batch_size),
                                );
                                dispatch_ring(
                                    &mut lanes[s],
                                    full,
                                    config.overload,
                                    &dropped[s],
                                    &mut orphaned[s],
                                );
                            }
                        }
                        for (s, buffer) in buffers.into_iter().enumerate() {
                            if !buffer.is_empty() {
                                dispatch_ring(
                                    &mut lanes[s],
                                    buffer,
                                    config.overload,
                                    &dropped[s],
                                    &mut orphaned[s],
                                );
                            }
                        }
                        let high_water: Vec<u64> =
                            lanes.iter().map(|lane| lane.high_water()).collect();
                        // Dropping the lanes closes this producer's
                        // rings; a worker retires once all P close.
                        drop(lanes);
                        (items, orphaned, high_water)
                    })
                })
                .collect();
            let mut per_shard_items = vec![0u64; n];
            let mut orphaned = vec![0u64; n];
            let mut high_water = vec![0u64; n];
            for handle in producer_handles {
                // A producer panic would poison the whole run; none of
                // the producer loop panics short of an OOM abort.
                let (items, orph, hw) = handle.join().expect("ingestion thread panicked");
                for s in 0..n {
                    per_shard_items[s] += items[s];
                    orphaned[s] += orph[s];
                    high_water[s] = high_water[s].max(hw[s]);
                }
            }
            let outcomes = handles
                .into_iter()
                .map(|handle| handle.join())
                .collect::<Vec<_>>();
            (outcomes, per_shard_items, orphaned, high_water)
        });
        let elapsed = start.elapsed();
        let per_shard_dropped: Vec<u64> =
            dropped.iter().map(|d| d.load(Ordering::Relaxed)).collect();
        self.reassemble(
            ReportInputs {
                per_shard_items,
                per_shard_dropped,
                orphaned,
                per_shard_ring_high_water: high_water,
                ring_capacity: queue_depth as u64,
                elapsed,
            },
            outcomes,
        )
    }

    /// Shared post-run reassembly: fold worker outcomes into the
    /// report, rebuild quarantined slots cold from the factory, and
    /// restore the engine's shards and coverage annotations.
    fn reassemble(
        &mut self,
        inputs: ReportInputs,
        outcomes: Vec<thread::Result<WorkerOutcome<B>>>,
    ) -> DriverReport {
        let ReportInputs {
            per_shard_items,
            per_shard_dropped,
            orphaned,
            per_shard_ring_high_water,
            ring_capacity,
            elapsed,
        } = inputs;
        let n = per_shard_items.len();
        let mut returned = Vec::with_capacity(n);
        let mut per_shard_admitted = vec![0u64; n];
        let mut per_shard_drained = vec![0u64; n];
        let mut per_shard_quarantined = vec![0u64; n];
        let mut failures = Vec::new();
        let mut health = Vec::with_capacity(n);
        for (s, joined) in outcomes.into_iter().enumerate() {
            let outcome = match joined {
                Ok(outcome) => outcome,
                // The worker thread itself panicked outside the guarded
                // drain (a driver bug, not a backend bug) — treat every
                // item not otherwise accounted as quarantined and
                // rebuild anyway.
                Err(payload) => WorkerOutcome {
                    shard: None,
                    admitted: 0,
                    drained: 0,
                    quarantined: per_shard_items[s]
                        .saturating_sub(per_shard_dropped[s])
                        .saturating_sub(orphaned[s]),
                    panic_message: Some(panic_message(payload)),
                },
            };
            per_shard_admitted[s] = outcome.admitted;
            per_shard_drained[s] = outcome.drained;
            per_shard_quarantined[s] = outcome.quarantined + orphaned[s];
            match outcome.shard {
                Some(shard) => {
                    returned.push(shard);
                    health.push(ShardHealth::Healthy);
                }
                None => {
                    failures.push(ShardFailure {
                        shard: s,
                        message: outcome
                            .panic_message
                            .unwrap_or_else(|| "shard backend lost without a panic".to_string()),
                        items_lost: per_shard_quarantined[s],
                    });
                    returned.push(self.fresh_shard(s));
                    // Cold rebuild: the shard's conserved items are not
                    // represented until new arrivals repopulate it.
                    health.push(ShardHealth::Degraded);
                }
            }
        }
        self.restore_shards(returned);
        self.set_coverage(health, per_shard_drained.clone());
        let per_shard_backend = self.shard_backend_labels();
        DriverReport {
            items: per_shard_items.iter().sum(),
            elapsed,
            per_shard_items,
            per_shard_admitted,
            per_shard_drained,
            per_shard_dropped,
            per_shard_quarantined,
            per_shard_recovered: vec![0; n],
            per_shard_ring_high_water,
            ring_capacity,
            failures,
            per_shard_backend,
            lifecycle: ShardLifecycle::default(),
        }
    }
}

/// Producer-side tallies a run hands to [`ShardedQMax::reassemble`].
struct ReportInputs {
    per_shard_items: Vec<u64>,
    per_shard_dropped: Vec<u64>,
    orphaned: Vec<u64>,
    per_shard_ring_high_water: Vec<u64>,
    ring_capacity: u64,
    elapsed: Duration,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{silence_fault_panics, FaultSchedule, FaultyBackend};
    use crate::sharded::ShardedQMax;
    use qmax_core::DeamortizedQMax;
    use qmax_traces::gen::{caida_like, random_u64_stream};

    fn sorted_vals(qm: &mut impl QMax<u64, u64>) -> Vec<u64> {
        let mut v: Vec<u64> = qm.query().into_iter().map(|(_, v)| v).collect();
        v.sort_unstable();
        v
    }

    fn assert_balanced(report: &DriverReport) {
        for s in 0..report.per_shard_items.len() {
            assert_eq!(
                report.per_shard_items[s],
                report.per_shard_drained[s]
                    + report.per_shard_dropped[s]
                    + report.per_shard_quarantined[s],
                "shard {s} accounting does not balance: {report:?}"
            );
            assert!(report.per_shard_admitted[s] <= report.per_shard_drained[s]);
            assert!(report.per_shard_ring_high_water[s] <= report.ring_capacity);
        }
    }

    #[test]
    fn threaded_run_matches_sequential_inserts() {
        let items: Vec<(u64, u64)> = random_u64_stream(60_000, 21)
            .enumerate()
            .map(|(i, v)| (i as u64, v))
            .collect();
        let q = 128;
        for shards in [1usize, 2, 4] {
            let mut threaded: ShardedQMax<u64, u64> = ShardedQMax::new(q, 0.25, shards);
            let report = threaded.run_threaded(items.iter().copied(), DriverConfig::default());
            assert_eq!(report.items, items.len() as u64);
            assert_eq!(report.per_shard_items.len(), shards);
            assert!(report.failures.is_empty());
            assert_eq!(report.dropped() + report.quarantined(), 0);
            assert_eq!(report.ring_capacity, 8);
            assert_balanced(&report);
            let mut sequential: ShardedQMax<u64, u64> = ShardedQMax::new(q, 0.25, shards);
            for &(id, v) in &items {
                sequential.insert(id, v);
            }
            assert_eq!(
                sorted_vals(&mut threaded),
                sorted_vals(&mut sequential),
                "threaded result diverged at {shards} shards"
            );
        }
    }

    #[test]
    fn ring_and_mpsc_reference_drivers_agree() {
        let items: Vec<(u64, u64)> = random_u64_stream(50_000, 44)
            .enumerate()
            .map(|(i, v)| (i as u64, v))
            .collect();
        let q = 64;
        for shards in [1usize, 3] {
            let mut ring_engine: ShardedQMax<u64, u64> = ShardedQMax::new(q, 0.25, shards);
            let ring_report =
                ring_engine.run_threaded(items.iter().copied(), DriverConfig::default());
            let mut mpsc_engine: ShardedQMax<u64, u64> = ShardedQMax::new(q, 0.25, shards);
            let mpsc_report =
                mpsc_engine.run_threaded_mpsc(items.iter().copied(), DriverConfig::default());
            assert_eq!(ring_report.per_shard_items, mpsc_report.per_shard_items);
            assert_eq!(ring_report.per_shard_drained, mpsc_report.per_shard_drained);
            assert_eq!(
                ring_report.per_shard_admitted,
                mpsc_report.per_shard_admitted
            );
            assert_eq!(mpsc_report.ring_capacity, 0);
            assert_eq!(mpsc_report.per_shard_ring_high_water, vec![0; shards]);
            assert!(ring_report.per_shard_ring_high_water.iter().any(|&h| h > 0));
            assert_balanced(&ring_report);
            assert_balanced(&mpsc_report);
            assert_eq!(
                sorted_vals(&mut ring_engine),
                sorted_vals(&mut mpsc_engine),
                "ring and mpsc drivers diverged at {shards} shards"
            );
        }
    }

    #[test]
    fn partitioned_run_matches_reference() {
        let items: Vec<(u64, u64)> = random_u64_stream(60_000, 17)
            .enumerate()
            .map(|(i, v)| (i as u64, v))
            .collect();
        let q = 64;
        for producers in [1usize, 2, 4] {
            let chunk = items.len().div_ceil(producers);
            let streams: Vec<_> = items.chunks(chunk).map(|c| c.iter().copied()).collect();
            let mut partitioned: ShardedQMax<u64, u64> = ShardedQMax::new(q, 0.25, 3);
            let report = partitioned.run_threaded_partitioned(streams, DriverConfig::default());
            assert_eq!(report.items, items.len() as u64);
            assert!(report.failures.is_empty());
            assert_eq!(report.dropped() + report.quarantined(), 0);
            assert_balanced(&report);
            let mut reference: ShardedQMax<u64, u64> = ShardedQMax::new(q, 0.25, 3);
            reference.insert_batch(&items);
            // The exact top-q is insensitive to sub-stream interleaving.
            assert_eq!(
                sorted_vals(&mut partitioned),
                sorted_vals(&mut reference),
                "partitioned result diverged at {producers} producers"
            );
        }
    }

    #[test]
    fn pinned_run_agrees_with_unpinned() {
        let items: Vec<(u64, u64)> = random_u64_stream(20_000, 5)
            .enumerate()
            .map(|(i, v)| (i as u64, v))
            .collect();
        let mut pinned: ShardedQMax<u64, u64> = ShardedQMax::new(32, 0.25, 2);
        let report = pinned.run_threaded(
            items.iter().copied(),
            DriverConfig {
                pin_threads: true,
                ..DriverConfig::default()
            },
        );
        assert!(report.failures.is_empty());
        assert_balanced(&report);
        let mut plain: ShardedQMax<u64, u64> = ShardedQMax::new(32, 0.25, 2);
        plain.insert_batch(&items);
        assert_eq!(sorted_vals(&mut pinned), sorted_vals(&mut plain));
    }

    #[test]
    fn report_accounts_for_all_items() {
        let mut engine: ShardedQMax<u64, u64> = ShardedQMax::new(32, 0.5, 4);
        let items: Vec<(u64, u64)> = caida_like(50_000, 8)
            .map(|p| (p.flow().as_u64(), p.len as u64))
            .collect();
        let report = engine.run_threaded(items.into_iter(), DriverConfig::default());
        assert_eq!(report.items, 50_000);
        assert_eq!(report.per_shard_items.iter().sum::<u64>(), 50_000);
        assert_balanced(&report);
        let agg = engine.aggregate_stats();
        assert_eq!(agg.admitted, report.per_shard_admitted.iter().sum::<u64>());
        assert!(report.throughput_mips() > 0.0);
        assert!(report.max_load_factor() >= 1.0);
        assert_eq!(report.per_shard_backend, vec!["qmax-deamortized"; 4]);
        assert_eq!(report.per_shard_ring_high_water.len(), 4);
    }

    #[test]
    fn engine_remains_usable_after_threaded_run() {
        let mut engine: ShardedQMax<u64, u64> = ShardedQMax::new(8, 0.5, 2);
        let items: Vec<(u64, u64)> = (0..10_000u64).map(|i| (i, i)).collect();
        engine.run_threaded(items.into_iter(), DriverConfig::default());
        // Post-run inserts land in the same structure.
        engine.insert(999_999, 1_000_000);
        let mut top = sorted_vals(&mut engine);
        assert_eq!(top.pop(), Some(1_000_000));
        assert_eq!(top.pop(), Some(9_999));
    }

    #[test]
    fn tiny_batches_and_shallow_queues_still_agree() {
        let items: Vec<(u64, u64)> = random_u64_stream(5_000, 33)
            .enumerate()
            .map(|(i, v)| (i as u64, v))
            .collect();
        let q = 16;
        let mut a: ShardedQMax<u64, u64> = ShardedQMax::new(q, 0.5, 3);
        a.run_threaded(
            items.iter().copied(),
            DriverConfig {
                batch_size: 1,
                queue_depth: 1,
                overload: OverloadPolicy::Block,
                ..DriverConfig::default()
            },
        );
        let mut b: ShardedQMax<u64, u64> = ShardedQMax::new(q, 0.5, 3);
        b.insert_batch(&items);
        assert_eq!(sorted_vals(&mut a), sorted_vals(&mut b));
    }

    #[test]
    fn panicking_shard_is_quarantined_and_rebuilt() {
        let _silence = silence_fault_panics();
        let q = 32;
        let mut engine: ShardedQMax<u64, u64, FaultyBackend<DeamortizedQMax<u64, u64>>> =
            ShardedQMax::with_backends(q, 3, move |s| {
                // FaultyBackend counts every offered item (its
                // insert_batch loops over insert), so panic_at(50)
                // fires early in shard 1's sub-stream.
                let schedule = if s == 1 {
                    FaultSchedule::panic_at(50)
                } else {
                    FaultSchedule::none()
                };
                FaultyBackend::new(DeamortizedQMax::new(q, 0.25), schedule)
            });
        let items: Vec<(u64, u64)> = random_u64_stream(20_000, 7)
            .enumerate()
            .map(|(i, v)| (i as u64, v))
            .collect();
        let report = engine.run_threaded(items.iter().copied(), DriverConfig::default());
        assert_eq!(report.failures.len(), 1);
        assert_eq!(report.failures[0].shard, 1);
        assert!(report.failures[0].message.contains("fault-injected"));
        assert_eq!(
            report.per_shard_quarantined[1],
            report.failures[0].items_lost
        );
        assert!(report.per_shard_quarantined[1] > 0);
        assert!(!report.is_healthy(1));
        assert_eq!(report.healthy_shards(), vec![0, 2]);
        assert_balanced(&report);
        // The rebuilt slot is empty but live: the engine answers queries
        // and accepts new items for shard 1.
        assert!(engine.shards()[1].is_empty());
        let top = engine.query();
        assert!(!top.is_empty());
    }

    #[test]
    fn shedding_bounds_loss_and_balances_accounting() {
        let q = 16;
        let budget = 2_000u64;
        let mut engine: ShardedQMax<u64, u64, FaultyBackend<DeamortizedQMax<u64, u64>>> =
            ShardedQMax::with_backends(q, 2, move |s| {
                let schedule = if s == 0 {
                    // Slow shard 0 down so its ring actually fills.
                    FaultSchedule::stall_every(256, 2)
                } else {
                    FaultSchedule::none()
                };
                FaultyBackend::new(DeamortizedQMax::new(q, 0.5), schedule)
            });
        let items: Vec<(u64, u64)> = random_u64_stream(40_000, 99)
            .enumerate()
            .map(|(i, v)| (i as u64, v))
            .collect();
        let report = engine.run_threaded(
            items.iter().copied(),
            DriverConfig {
                batch_size: 64,
                queue_depth: 1,
                overload: OverloadPolicy::Shed {
                    max_dropped: budget,
                },
                ..DriverConfig::default()
            },
        );
        assert!(report.failures.is_empty());
        for &d in &report.per_shard_dropped {
            assert!(d <= budget, "shed {d} items, budget {budget}");
        }
        if report.per_shard_dropped[0] > 0 {
            // Shedding only fires against a full ring, so the stalled
            // shard's high-water must have pinned at capacity.
            assert!(report.saturated(0), "shed without saturation: {report:?}");
        }
        assert_balanced(&report);
    }

    #[test]
    fn max_load_factor_ignores_quarantined_shards() {
        let report = DriverReport {
            items: 300,
            elapsed: Duration::from_millis(1),
            per_shard_items: vec![100, 150, 50],
            per_shard_admitted: vec![10, 0, 5],
            per_shard_drained: vec![100, 20, 50],
            per_shard_dropped: vec![0, 0, 0],
            per_shard_quarantined: vec![0, 130, 0],
            per_shard_recovered: vec![0, 0, 0],
            per_shard_ring_high_water: vec![1, 8, 1],
            ring_capacity: 8,
            failures: vec![ShardFailure {
                shard: 1,
                message: "boom".into(),
                items_lost: 130,
            }],
            per_shard_backend: vec!["qmax-deamortized"; 3],
            lifecycle: ShardLifecycle::default(),
        };
        // Healthy shards carry 100 and 50 items: mean 75, max 100.
        assert!((report.max_load_factor() - 100.0 / 75.0).abs() < 1e-12);
        assert!(report.saturated(1));
        assert!(!report.saturated(0));

        // A single healthy shard is perfectly balanced by definition.
        let one_left = DriverReport {
            per_shard_items: vec![100, 150],
            per_shard_admitted: vec![10, 0],
            per_shard_drained: vec![100, 0],
            per_shard_quarantined: vec![0, 150],
            failures: vec![ShardFailure {
                shard: 1,
                message: "boom".into(),
                items_lost: 150,
            }],
            items: 250,
            elapsed: Duration::from_millis(1),
            per_shard_dropped: vec![0, 0],
            per_shard_recovered: vec![0, 0],
            per_shard_ring_high_water: vec![0, 0],
            ring_capacity: 8,
            per_shard_backend: vec!["qmax-deamortized"; 2],
            lifecycle: ShardLifecycle::default(),
        };
        assert_eq!(one_left.max_load_factor(), 1.0);

        // All shards quarantined: no load to balance.
        let none_left = DriverReport {
            per_shard_items: vec![100],
            per_shard_admitted: vec![0],
            per_shard_drained: vec![0],
            per_shard_quarantined: vec![100],
            failures: vec![ShardFailure {
                shard: 0,
                message: "boom".into(),
                items_lost: 100,
            }],
            items: 100,
            elapsed: Duration::from_millis(1),
            per_shard_dropped: vec![0],
            per_shard_recovered: vec![0],
            per_shard_ring_high_water: vec![0],
            ring_capacity: 8,
            per_shard_backend: vec!["qmax-deamortized"],
            lifecycle: ShardLifecycle::default(),
        };
        assert_eq!(none_left.max_load_factor(), 0.0);
    }
}
