//! Multi-threaded shard driver: one worker thread per shard, fed with
//! pre-routed batches over bounded channels.
//!
//! This is the software analogue of the paper's per-PMD deployment: the
//! producer plays the NIC's RSS stage (hash each id, append to the
//! target shard's batch), workers play PMD threads (drain batches into
//! their private reservoir), and nothing is shared between workers, so
//! there is no locking on the per-item hot path.

use crate::shard_key::ShardKey;
use crate::sharded::ShardedQMax;
use qmax_core::QMax;
use std::sync::mpsc;
use std::thread;
use std::time::{Duration, Instant};

/// Tuning knobs for [`ShardedQMax::run_threaded`].
#[derive(Debug, Clone, Copy)]
pub struct DriverConfig {
    /// Items per batch handed to a worker (amortizes channel overhead;
    /// the paper's shared-memory blocks play the same role).
    pub batch_size: usize,
    /// Bounded in-flight batches per worker before the producer blocks
    /// (backpressure instead of unbounded queueing).
    pub queue_depth: usize,
}

impl Default for DriverConfig {
    fn default() -> Self {
        DriverConfig {
            batch_size: 1024,
            queue_depth: 8,
        }
    }
}

/// What a threaded run did: per-shard load and aggregate timing.
#[derive(Debug, Clone)]
pub struct DriverReport {
    /// Total items routed.
    pub items: u64,
    /// Wall-clock time from first route to last worker joining.
    pub elapsed: Duration,
    /// Items routed to each shard.
    pub per_shard_items: Vec<u64>,
    /// Items each shard's backend admitted (survived both the batched
    /// pre-filter and the backend's own threshold check).
    pub per_shard_admitted: Vec<u64>,
}

impl DriverReport {
    /// Aggregate insert throughput in millions of items per second.
    pub fn throughput_mips(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.items as f64 / self.elapsed.as_secs_f64() / 1e6
    }

    /// Load-balance quality: most-loaded shard relative to the mean
    /// (1.0 = perfectly balanced; the pool's throughput is limited by
    /// the most loaded worker, exactly as with PMD threads).
    pub fn max_load_factor(&self) -> f64 {
        let max = self.per_shard_items.iter().copied().max().unwrap_or(0) as f64;
        let mean = self.items as f64 / self.per_shard_items.len().max(1) as f64;
        if mean == 0.0 {
            0.0
        } else {
            max / mean
        }
    }
}

/// Drains a whole owned batch into one shard with a register-cached Ψ:
/// the worker-side half of the batched hot path.
fn drain_batch<I, V: Ord, B: QMax<I, V>>(shard: &mut B, batch: Vec<(I, V)>) -> u64 {
    let mut admitted = 0u64;
    let mut psi: Option<V> = shard.threshold();
    for (id, val) in batch {
        if let Some(t) = &psi {
            if val <= *t {
                continue;
            }
        }
        if shard.insert(id, val) {
            admitted += 1;
            // Ψ can only have risen via an admitted insert.
            psi = shard.threshold();
        }
    }
    admitted
}

impl<I, V, B> ShardedQMax<I, V, B>
where
    I: ShardKey + Send,
    V: Ord + Clone + Send,
    B: QMax<I, V> + Send,
{
    /// Feeds `stream` through one worker thread per shard and returns a
    /// load/timing report. The engine is fully usable (and queryable)
    /// afterwards: shards move into the workers for the run and move
    /// back when the stream is exhausted.
    ///
    /// The producer thread routes ids to shards ([`ShardKey`] hash) and
    /// accumulates per-shard batches of `config.batch_size` items;
    /// workers apply the same Ψ-cached batch drain as
    /// [`ShardedQMax::insert_batch`]. Channels are bounded at
    /// `config.queue_depth` batches, so a slow shard backpressures the
    /// producer instead of buffering the stream.
    pub fn run_threaded<S>(&mut self, stream: S, config: DriverConfig) -> DriverReport
    where
        S: Iterator<Item = (I, V)>,
    {
        let n = self.shard_count();
        let batch_size = config.batch_size.max(1);
        let queue_depth = config.queue_depth.max(1);
        let shards = self.take_shards();
        let router = self.router();
        let mut per_shard_items = vec![0u64; n];
        let start = Instant::now();
        let (returned, per_shard_admitted) = thread::scope(|scope| {
            let mut senders = Vec::with_capacity(n);
            let mut handles = Vec::with_capacity(n);
            for mut shard in shards {
                let (tx, rx) = mpsc::sync_channel::<Vec<(I, V)>>(queue_depth);
                senders.push(tx);
                handles.push(scope.spawn(move || {
                    let mut admitted = 0u64;
                    for batch in rx {
                        admitted += drain_batch(&mut shard, batch);
                    }
                    (shard, admitted)
                }));
            }
            let mut buffers: Vec<Vec<(I, V)>> =
                (0..n).map(|_| Vec::with_capacity(batch_size)).collect();
            for (id, val) in stream {
                let s = router.route(&id);
                per_shard_items[s] += 1;
                buffers[s].push((id, val));
                if buffers[s].len() >= batch_size {
                    let full = std::mem::replace(&mut buffers[s], Vec::with_capacity(batch_size));
                    senders[s].send(full).expect("shard worker exited early");
                }
            }
            for (s, buffer) in buffers.into_iter().enumerate() {
                if !buffer.is_empty() {
                    senders[s].send(buffer).expect("shard worker exited early");
                }
            }
            // Closing the channels ends each worker's drain loop.
            drop(senders);
            let mut returned = Vec::with_capacity(n);
            let mut admitted = Vec::with_capacity(n);
            for handle in handles {
                let (shard, adm) = handle.join().expect("shard worker panicked");
                returned.push(shard);
                admitted.push(adm);
            }
            (returned, admitted)
        });
        let elapsed = start.elapsed();
        self.restore_shards(returned);
        DriverReport {
            items: per_shard_items.iter().sum(),
            elapsed,
            per_shard_items,
            per_shard_admitted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sharded::ShardedQMax;
    use qmax_traces::gen::{caida_like, random_u64_stream};

    fn sorted_vals(qm: &mut impl QMax<u64, u64>) -> Vec<u64> {
        let mut v: Vec<u64> = qm.query().into_iter().map(|(_, v)| v).collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn threaded_run_matches_sequential_inserts() {
        let items: Vec<(u64, u64)> = random_u64_stream(60_000, 21)
            .enumerate()
            .map(|(i, v)| (i as u64, v))
            .collect();
        let q = 128;
        for shards in [1usize, 2, 4] {
            let mut threaded: ShardedQMax<u64, u64> = ShardedQMax::new(q, 0.25, shards);
            let report = threaded.run_threaded(items.iter().copied(), DriverConfig::default());
            assert_eq!(report.items, items.len() as u64);
            assert_eq!(report.per_shard_items.len(), shards);
            let mut sequential: ShardedQMax<u64, u64> = ShardedQMax::new(q, 0.25, shards);
            for &(id, v) in &items {
                sequential.insert(id, v);
            }
            assert_eq!(
                sorted_vals(&mut threaded),
                sorted_vals(&mut sequential),
                "threaded result diverged at {shards} shards"
            );
        }
    }

    #[test]
    fn report_accounts_for_all_items() {
        let mut engine: ShardedQMax<u64, u64> = ShardedQMax::new(32, 0.5, 4);
        let items: Vec<(u64, u64)> = caida_like(50_000, 8)
            .map(|p| (p.flow().as_u64(), p.len as u64))
            .collect();
        let report = engine.run_threaded(items.into_iter(), DriverConfig::default());
        assert_eq!(report.items, 50_000);
        assert_eq!(report.per_shard_items.iter().sum::<u64>(), 50_000);
        // Admission never exceeds load, and the engine stats agree.
        for (adm, load) in report
            .per_shard_admitted
            .iter()
            .zip(&report.per_shard_items)
        {
            assert!(adm <= load);
        }
        let agg = engine.aggregate_stats();
        assert_eq!(agg.admitted, report.per_shard_admitted.iter().sum::<u64>());
        assert!(report.throughput_mips() > 0.0);
        assert!(report.max_load_factor() >= 1.0);
    }

    #[test]
    fn engine_remains_usable_after_threaded_run() {
        let mut engine: ShardedQMax<u64, u64> = ShardedQMax::new(8, 0.5, 2);
        let items: Vec<(u64, u64)> = (0..10_000u64).map(|i| (i, i)).collect();
        engine.run_threaded(items.into_iter(), DriverConfig::default());
        // Post-run inserts land in the same structure.
        engine.insert(999_999, 1_000_000);
        let mut top = sorted_vals(&mut engine);
        assert_eq!(top.pop(), Some(1_000_000));
        assert_eq!(top.pop(), Some(9_999));
    }

    #[test]
    fn tiny_batches_and_shallow_queues_still_agree() {
        let items: Vec<(u64, u64)> = random_u64_stream(5_000, 33)
            .enumerate()
            .map(|(i, v)| (i as u64, v))
            .collect();
        let q = 16;
        let mut a: ShardedQMax<u64, u64> = ShardedQMax::new(q, 0.5, 3);
        a.run_threaded(
            items.iter().copied(),
            DriverConfig {
                batch_size: 1,
                queue_depth: 1,
            },
        );
        let mut b: ShardedQMax<u64, u64> = ShardedQMax::new(q, 0.5, 3);
        b.insert_batch(&items);
        assert_eq!(sorted_vals(&mut a), sorted_vals(&mut b));
    }
}
