//! Lock-free single-producer/single-consumer batch rings — the
//! ingestion spine of the threaded shard drivers.
//!
//! The paper's throughput thesis is that measurement wins come from
//! shaving constant factors off the per-update hot path. Routing every
//! admitted batch through `std::sync::mpsc` bounded channels put
//! mutex-and-condvar machinery on the hottest cross-thread path in the
//! system: every `send`/`recv` pair took an internal lock and possibly
//! a futex syscall. This module replaces that plumbing with classic
//! Lamport SPSC rings specialized for the drivers' traffic shape —
//! whole owned batches (`Vec<(I, V)>`), one ring per (ingestion
//! thread × shard), so the PR 5 admit kernel's contiguous runs travel
//! intact and nothing on the steady-state path takes a lock:
//!
//! * **Publish/consume protocol** — `head` counts completed pops,
//!   `tail` counts completed pushes; both are monotonic `u64`s on their
//!   own cache lines ([`CachePadded`]), so occupancy is `tail - head`
//!   and the slot for operation `k` is `k & mask`. The producer writes
//!   the slot *then* publishes with a `Release` store of `tail + 1`;
//!   the consumer `Acquire`-loads `tail` before reading the slot, and
//!   releases the slot back with a `Release` store of `head + 1` that
//!   the producer `Acquire`-loads before reusing it. That pair of
//!   edges is the entire synchronization story — no CAS, no RMW, no
//!   lock on the steady-state path.
//! * **Spin-then-park consumption** — [`Consumer::recv`] spins briefly
//!   (cheap when traffic is flowing), then yields, then parks with a
//!   bounded timeout. The producer unparks after a push only when the
//!   consumer advertised it was parking, so an idle shard costs no CPU
//!   while a hot shard never syscalls. Parking always uses a timeout,
//!   so a lost wakeup race costs one timeout, never a hang.
//! * **Occupancy observability** — the producer records the high-water
//!   occupancy it observes ([`Producer::high_water`]), the backpressure
//!   signal [`crate::DriverReport::per_shard_ring_high_water`]
//!   surfaces; both handles can read the monotonic
//!   [push](Producer::pushed)/[consumed](Producer::consumed) counters,
//!   which is what the supervisor's stall watchdog heartbeats on.
//! * **Failure visibility** — dropping the [`Producer`] closes the
//!   ring (the consumer drains the leftovers and sees end-of-stream);
//!   dropping the [`Consumer`] (e.g. a worker thread unwinding) raises
//!   a flag the producer polls instead of blocking forever on a ring
//!   nobody will ever drain.
//!
//! In-flight elements are dropped with the ring itself, whichever side
//! outlives the other.

// The one crate module that needs `unsafe`: the slot array is
// `UnsafeCell<MaybeUninit<T>>` handed off between exactly two threads
// by the Acquire/Release protocol documented above. Everything outside
// this module stays forbidden territory; the protocol itself is pinned
// by the `ring::` unit tests, which CI also runs under Miri.
#![allow(unsafe_code)]

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, Thread};
use std::time::Duration;

/// Pads (and aligns) a value to its own 128-byte cache-line pair, so
/// the producer-owned `tail` and consumer-owned `head` never
/// false-share (128 covers the adjacent-line prefetcher on x86).
#[repr(align(128))]
struct CachePadded<T>(T);

/// Consumer-side park/wake state, kept off the hot indices' lines.
struct ParkState {
    /// Set by the consumer immediately before parking; cleared by
    /// whichever side wakes it. The producer only takes the handle
    /// lock when this is set, so steady-state pushes never lock.
    parked: AtomicBool,
    /// The consumer's thread handle, registered on first `recv`.
    consumer: Mutex<Option<Thread>>,
}

/// Shared state of one SPSC ring. `buf.len()` is a power of two ≥ the
/// logical capacity; fullness is judged against the logical capacity so
/// `with_capacity(depth)` admits exactly `depth` in-flight elements,
/// matching the bounded-channel semantics it replaces.
struct RingShared<T> {
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    mask: u64,
    cap: u64,
    /// Completed pops (consumer-written, producer-read).
    head: CachePadded<AtomicU64>,
    /// Completed pushes (producer-written, consumer-read).
    tail: CachePadded<AtomicU64>,
    /// Highest occupancy the producer ever observed (≤ `cap`).
    high_water: AtomicU64,
    /// Producer dropped/closed: consume the leftovers, then stop.
    closed: AtomicBool,
    /// Consumer dropped (worker thread died): pushes can never drain.
    consumer_gone: AtomicBool,
    park: ParkState,
}

// SAFETY: the ring hands each `T` from exactly one producer thread to
// exactly one consumer thread, with the slot write/read ordered by the
// Release(tail)/Acquire(tail) and Release(head)/Acquire(head) edges;
// `&RingShared` is otherwise only used for atomics and the park mutex.
unsafe impl<T: Send> Send for RingShared<T> {}
unsafe impl<T: Send> Sync for RingShared<T> {}

impl<T> Drop for RingShared<T> {
    fn drop(&mut self) {
        // Exclusive access: both handles are gone. Drop the in-flight
        // elements the consumer never claimed.
        let head = self.head.0.load(Ordering::Relaxed);
        let tail = self.tail.0.load(Ordering::Relaxed);
        for k in head..tail {
            let slot = self.buf[(k & self.mask) as usize].get();
            // SAFETY: slots in [head, tail) were written by a push and
            // never popped; nobody else can touch them now.
            unsafe { (*slot).assume_init_drop() };
        }
    }
}

/// The producing half of an SPSC ring (not `Clone`: single producer).
pub struct Producer<T> {
    shared: Arc<RingShared<T>>,
}

/// The consuming half of an SPSC ring (not `Clone`: single consumer).
pub struct Consumer<T> {
    shared: Arc<RingShared<T>>,
    registered: bool,
}

/// Creates a bounded SPSC ring admitting exactly `capacity` in-flight
/// elements (`capacity` is clamped to ≥ 1).
pub fn ring<T: Send>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    let cap = capacity.max(1) as u64;
    let slots = cap.next_power_of_two();
    let buf: Box<[UnsafeCell<MaybeUninit<T>>]> = (0..slots)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect();
    let shared = Arc::new(RingShared {
        buf,
        mask: slots - 1,
        cap,
        head: CachePadded(AtomicU64::new(0)),
        tail: CachePadded(AtomicU64::new(0)),
        high_water: AtomicU64::new(0),
        closed: AtomicBool::new(false),
        consumer_gone: AtomicBool::new(false),
        park: ParkState {
            parked: AtomicBool::new(false),
            consumer: Mutex::new(None),
        },
    });
    (
        Producer {
            shared: Arc::clone(&shared),
        },
        Consumer {
            shared,
            registered: false,
        },
    )
}

/// How long a parked consumer sleeps before re-checking on its own —
/// the bound on the cost of a lost wakeup race, not the common path
/// (the producer unparks eagerly).
const PARK_TIMEOUT: Duration = Duration::from_micros(200);

/// Busy-poll iterations before a waiter starts yielding its timeslice.
/// Deliberately small: on an oversubscribed box (including the 1-core
/// CI container) the peer needs the core more than we need the spin.
const SPIN_LIMIT: u32 = 64;

/// Yield rounds after the spin phase before a consumer parks.
const YIELD_LIMIT: u32 = SPIN_LIMIT + 8;

/// One step of the shared spin→yield escalation used by both the
/// consumer's receive wait and the producer's full-ring wait.
#[inline]
pub(crate) fn backoff(step: u32) {
    if step < SPIN_LIMIT {
        std::hint::spin_loop();
    } else {
        thread::yield_now();
    }
}

impl<T> Producer<T> {
    /// Attempts to publish `t`; returns it back if the ring is full.
    /// Never blocks, never locks (except to wake a parked consumer).
    #[inline]
    pub fn try_push(&mut self, t: T) -> Result<(), T> {
        let sh = &*self.shared;
        let tail = sh.tail.0.load(Ordering::Relaxed);
        let head = sh.head.0.load(Ordering::Acquire);
        let occ = tail - head;
        if occ == sh.cap {
            // Full: record that backpressure pinned occupancy at
            // capacity — the signal the overload policy acts on.
            sh.high_water.fetch_max(occ, Ordering::Relaxed);
            return Err(t);
        }
        let slot = sh.buf[(tail & sh.mask) as usize].get();
        // SAFETY: head ≤ tail - cap < tail means this slot's previous
        // element (operation tail - slots) was popped, and the Acquire
        // load of `head` ordered that pop's slot read before this
        // write. Only this producer writes slots.
        unsafe { (*slot).write(t) };
        sh.tail.0.store(tail + 1, Ordering::Release);
        sh.high_water.fetch_max(occ + 1, Ordering::Relaxed);
        if sh.park.parked.swap(false, Ordering::AcqRel) {
            if let Some(thread) = sh.park.consumer.lock().unwrap().as_ref() {
                thread.unpark();
            }
        }
        Ok(())
    }

    /// Publishes `t`, waiting out a full ring with the bounded
    /// spin→yield escalation. Returns `Err(t)` only if the consumer
    /// died (its side dropped), i.e. the ring can never drain.
    pub fn push_wait(&mut self, mut t: T) -> Result<(), T> {
        let mut step = 0u32;
        loop {
            match self.try_push(t) {
                Ok(()) => return Ok(()),
                Err(back) => {
                    if self.consumer_gone() {
                        return Err(back);
                    }
                    t = back;
                    backoff(step);
                    step = step.saturating_add(1);
                }
            }
        }
    }

    /// Elements currently in flight (pushed, not yet popped).
    pub fn occupancy(&self) -> u64 {
        let sh = &*self.shared;
        sh.tail.0.load(Ordering::Relaxed) - sh.head.0.load(Ordering::Acquire)
    }

    /// Logical capacity (the bound `try_push` enforces).
    pub fn capacity(&self) -> u64 {
        self.shared.cap
    }

    /// Highest occupancy ever observed by the producer, including
    /// full-ring rejections; ≤ [`capacity`](Self::capacity).
    pub fn high_water(&self) -> u64 {
        self.shared.high_water.load(Ordering::Relaxed)
    }

    /// Total elements ever pushed.
    pub fn pushed(&self) -> u64 {
        self.shared.tail.0.load(Ordering::Relaxed)
    }

    /// Total elements ever popped by the consumer — the monotonic
    /// progress counter the supervisor's watchdog heartbeats on.
    pub fn consumed(&self) -> u64 {
        self.shared.head.0.load(Ordering::Acquire)
    }

    /// Whether the consumer handle was dropped (its worker died):
    /// anything pushed from now on will never drain.
    pub fn consumer_gone(&self) -> bool {
        self.shared.consumer_gone.load(Ordering::Acquire)
    }

    /// Closes the ring: the consumer drains what is in flight, then
    /// sees end-of-stream. Dropping the producer does the same.
    pub fn close(&mut self) {
        let sh = &*self.shared;
        sh.closed.store(true, Ordering::Release);
        if sh.park.parked.swap(false, Ordering::AcqRel) {
            if let Some(thread) = sh.park.consumer.lock().unwrap().as_ref() {
                thread.unpark();
            }
        }
    }
}

impl<T> Drop for Producer<T> {
    fn drop(&mut self) {
        self.close();
    }
}

impl<T> Consumer<T> {
    /// Attempts to pop the oldest element. Never blocks.
    #[inline]
    pub fn try_pop(&mut self) -> Option<T> {
        let sh = &*self.shared;
        let head = sh.head.0.load(Ordering::Relaxed);
        let tail = sh.tail.0.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        let slot = sh.buf[(head & sh.mask) as usize].get();
        // SAFETY: head < tail and the Acquire load of `tail` ordered
        // the producer's slot write before this read. Only this
        // consumer reads-and-releases slots.
        let t = unsafe { (*slot).assume_init_read() };
        sh.head.0.store(head + 1, Ordering::Release);
        Some(t)
    }

    /// Pops the next element, spinning then yielding then parking while
    /// the ring is empty. Returns `None` once the ring is closed *and*
    /// drained — the end-of-stream a worker loop terminates on.
    pub fn recv(&mut self) -> Option<T> {
        if let Some(t) = self.try_pop() {
            return Some(t);
        }
        if !self.registered {
            *self.shared.park.consumer.lock().unwrap() = Some(thread::current());
            self.registered = true;
        }
        let mut step = 0u32;
        loop {
            if let Some(t) = self.try_pop() {
                return Some(t);
            }
            // Closed is checked *after* a failed pop: a producer that
            // pushes then closes always has its push observed.
            if self.shared.closed.load(Ordering::Acquire) {
                return self.try_pop();
            }
            if step < YIELD_LIMIT {
                backoff(step);
                step += 1;
                continue;
            }
            // Park with a timeout: the producer's unpark makes the
            // common wake immediate, the timeout bounds the rare race
            // where the push lands between our last pop attempt and
            // the park.
            self.shared.park.parked.store(true, Ordering::Release);
            if let Some(t) = self.try_pop() {
                self.shared.park.parked.store(false, Ordering::Release);
                return Some(t);
            }
            thread::park_timeout(PARK_TIMEOUT);
            self.shared.park.parked.store(false, Ordering::Release);
        }
    }

    /// Total elements ever popped.
    pub fn consumed(&self) -> u64 {
        self.shared.head.0.load(Ordering::Relaxed)
    }

    /// Whether the producing side has closed the ring (elements may
    /// still be in flight).
    pub fn is_closed(&self) -> bool {
        self.shared.closed.load(Ordering::Acquire)
    }
}

impl<T> Drop for Consumer<T> {
    fn drop(&mut self) {
        self.shared.consumer_gone.store(true, Ordering::Release);
    }
}

/// Pins the calling thread to `core` (Linux `sched_setaffinity` on the
/// current thread, issued as a raw syscall — the workspace carries no
/// libc dependency). Returns whether pinning took effect; on
/// unsupported platforms it is a no-op returning `false`, so
/// `DriverConfig::pin_threads` degrades to plain scheduling.
pub fn pin_current_thread(core: usize) -> bool {
    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    {
        const MASK_WORDS: usize = 16; // 1024 CPUs
        if core >= MASK_WORDS * 64 {
            return false;
        }
        let mut mask = [0u64; MASK_WORDS];
        mask[core / 64] |= 1u64 << (core % 64);
        let ret: isize;
        #[cfg(target_arch = "x86_64")]
        // SAFETY: sched_setaffinity(2) with pid 0 (the calling thread),
        // a correctly sized cpu_set_t buffer, and no memory written by
        // the kernel; clobbers follow the x86_64 syscall ABI.
        unsafe {
            std::arch::asm!(
                "syscall",
                inlateout("rax") 203isize => ret, // SYS_sched_setaffinity
                in("rdi") 0usize,
                in("rsi") MASK_WORDS * 8,
                in("rdx") mask.as_ptr(),
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack, readonly)
            );
        }
        #[cfg(target_arch = "aarch64")]
        // SAFETY: as above, via the aarch64 svc ABI.
        unsafe {
            std::arch::asm!(
                "svc 0",
                inlateout("x0") 0usize => ret,
                in("x1") MASK_WORDS * 8,
                in("x2") mask.as_ptr(),
                in("x8") 122usize, // SYS_sched_setaffinity
                options(nostack, readonly)
            );
        }
        ret == 0
    }
    #[cfg(not(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    )))]
    {
        let _ = core;
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    /// Drop-counting payload for the reclamation tests.
    #[derive(Debug)]
    struct Counted<'a>(u64, &'a AtomicUsize);
    impl Drop for Counted<'_> {
        fn drop(&mut self) {
            self.1.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn fifo_order_and_wraparound() {
        let (mut tx, mut rx) = ring::<u64>(3);
        assert_eq!(tx.capacity(), 3);
        // Several laps around the (4-slot) buffer with a capacity-3
        // bound: order is preserved and fullness is judged against the
        // logical capacity, not the slot count.
        let mut next_in = 0u64;
        let mut next_out = 0u64;
        for _ in 0..10 {
            while tx.try_push(next_in).is_ok() {
                next_in += 1;
            }
            assert_eq!(tx.occupancy(), 3);
            while let Some(v) = rx.try_pop() {
                assert_eq!(v, next_out);
                next_out += 1;
            }
            assert_eq!(next_in, next_out);
        }
        assert_eq!(next_out, 30);
    }

    #[test]
    fn empty_and_full_transitions() {
        let (mut tx, mut rx) = ring::<u32>(1);
        assert!(rx.try_pop().is_none());
        assert!(tx.try_push(7).is_ok());
        assert_eq!(tx.try_push(8), Err(8));
        assert_eq!(rx.try_pop(), Some(7));
        assert!(rx.try_pop().is_none());
        assert!(tx.try_push(9).is_ok());
        assert_eq!(rx.try_pop(), Some(9));
    }

    #[test]
    fn high_water_tracks_peak_occupancy_and_caps_at_capacity() {
        let (mut tx, mut rx) = ring::<u8>(4);
        assert_eq!(tx.high_water(), 0);
        tx.try_push(1).unwrap();
        tx.try_push(2).unwrap();
        assert_eq!(tx.high_water(), 2);
        rx.try_pop();
        rx.try_pop();
        // Draining never lowers the recorded peak.
        assert_eq!(tx.high_water(), 2);
        for i in 0..4 {
            tx.try_push(i).unwrap();
        }
        assert_eq!(tx.try_push(9), Err(9));
        assert_eq!(tx.high_water(), 4);
        assert_eq!(tx.high_water(), tx.capacity());
    }

    #[test]
    fn close_drains_then_ends_stream() {
        let (mut tx, mut rx) = ring::<u64>(8);
        tx.try_push(1).unwrap();
        tx.try_push(2).unwrap();
        tx.close();
        assert!(rx.is_closed());
        assert_eq!(rx.recv(), Some(1));
        assert_eq!(rx.recv(), Some(2));
        assert_eq!(rx.recv(), None);
    }

    #[test]
    fn dropping_producer_closes() {
        let (mut tx, mut rx) = ring::<u64>(2);
        tx.try_push(5).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Some(5));
        assert_eq!(rx.recv(), None);
    }

    #[test]
    fn dropping_consumer_is_visible_and_push_wait_escapes() {
        let (mut tx, rx) = ring::<u64>(1);
        assert!(!tx.consumer_gone());
        tx.try_push(1).unwrap();
        drop(rx);
        assert!(tx.consumer_gone());
        // Ring is full and nobody will ever drain it: push_wait must
        // hand the element back instead of waiting forever.
        assert_eq!(tx.push_wait(2), Err(2));
    }

    #[test]
    fn inflight_elements_drop_with_the_ring() {
        let drops = AtomicUsize::new(0);
        {
            let (mut tx, mut rx) = ring::<Counted>(4);
            tx.try_push(Counted(1, &drops)).unwrap();
            tx.try_push(Counted(2, &drops)).unwrap();
            tx.try_push(Counted(3, &drops)).unwrap();
            let popped = rx.try_pop().unwrap();
            assert_eq!(popped.0, 1);
            drop(popped);
            assert_eq!(drops.load(Ordering::SeqCst), 1);
        }
        // The two unclaimed elements died with the ring — exactly once.
        assert_eq!(drops.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn consumed_and_pushed_counters_are_monotonic() {
        let (mut tx, mut rx) = ring::<u64>(2);
        assert_eq!((tx.pushed(), tx.consumed()), (0, 0));
        tx.try_push(1).unwrap();
        tx.try_push(2).unwrap();
        assert_eq!((tx.pushed(), tx.consumed()), (2, 0));
        rx.try_pop();
        assert_eq!((tx.pushed(), tx.consumed()), (2, 1));
        assert_eq!(rx.consumed(), 1);
        rx.try_pop();
        assert_eq!(tx.consumed(), 2);
    }

    /// The cross-thread publish/consume ordering test CI also runs
    /// under Miri: every popped payload must be fully initialized and
    /// arrive exactly once, in order, across the handoff.
    #[test]
    fn cross_thread_transfer_is_exact_and_ordered() {
        let n: u64 = if cfg!(miri) { 200 } else { 200_000 };
        let (mut tx, mut rx) = ring::<Box<u64>>(8);
        let sum = thread::scope(|scope| {
            let consumer = scope.spawn(move || {
                let mut expect = 0u64;
                let mut sum = 0u64;
                while let Some(v) = rx.recv() {
                    assert_eq!(*v, expect, "reordered or duplicated element");
                    expect += 1;
                    sum = sum.wrapping_add(*v);
                }
                assert_eq!(expect, n, "lost elements");
                sum
            });
            for i in 0..n {
                tx.push_wait(Box::new(i)).unwrap();
            }
            drop(tx);
            consumer.join().unwrap()
        });
        assert_eq!(sum, (0..n).fold(0u64, u64::wrapping_add));
    }

    /// Park/unpark path: a slow producer forces the consumer through
    /// the spin→yield→park escalation; nothing may be lost or hang.
    #[test]
    fn parked_consumer_wakes_on_push_and_on_close() {
        let n: u64 = if cfg!(miri) { 5 } else { 50 };
        let (mut tx, mut rx) = ring::<u64>(2);
        thread::scope(|scope| {
            let consumer = scope.spawn(move || {
                let mut got = 0u64;
                while let Some(v) = rx.recv() {
                    assert_eq!(v, got);
                    got += 1;
                }
                got
            });
            for i in 0..n {
                if !cfg!(miri) {
                    // Let the consumer reach the parked state.
                    thread::sleep(Duration::from_micros(300));
                }
                tx.push_wait(i).unwrap();
            }
            drop(tx); // close wakes the parked consumer for shutdown
            assert_eq!(consumer.join().unwrap(), n);
        });
    }

    #[test]
    fn pin_current_thread_is_safe_to_call() {
        // On Linux pinning to core 0 should succeed; elsewhere the stub
        // returns false. Either way it must not crash or wedge.
        let ok = pin_current_thread(0);
        if cfg!(target_os = "linux") {
            assert!(ok, "sched_setaffinity(0) failed on linux");
        }
        // Out-of-range cores are rejected, not UB.
        assert!(!pin_current_thread(1 << 20));
    }
}
