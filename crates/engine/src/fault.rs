//! Deterministic fault injection for the sharded driver.
//!
//! Robustness claims are only as good as the failures they were tested
//! against, so this module makes failures *reproducible*: a
//! [`FaultyBackend`] wraps any [`QMax`] backend and fires a scripted
//! [`FaultSchedule`] — panics, stalls, and out-of-range values — at
//! exact insert counts. The same schedule over the same stream fails at
//! the same item every run, which is what lets the chaos suite compare
//! a faulted threaded run against a clean sequential reference.
//!
//! The schedule triggers on *offered* inserts (calls that reach the
//! backend after the driver's Ψ-prefilter), which is a deterministic
//! function of the shard's sub-stream under the blocking overload
//! policy.

use qmax_core::{BackendSnapshot, BatchInsert, Checkpoint, QMax};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Once;
use std::time::Duration;

/// What an armed fault does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic mid-insert, as a backend bug would: the wrapped backend's
    /// state is abandoned mid-operation, exercising the driver's
    /// quarantine path.
    Panic,
    /// Sleep for `millis` before the insert proceeds: a slow shard, not
    /// a broken one. Results are unaffected; queues fill — the fault
    /// that exercises [`crate::OverloadPolicy::Shed`].
    Stall {
        /// Stall duration per firing, in milliseconds.
        millis: u64,
    },
    /// Simulate the backend's own input validation tripping on a
    /// corrupt (out-of-range) value: panics like [`FaultKind::Panic`]
    /// but with the message a validation assert would carry.
    BadValue,
}

/// When a fault fires, measured in offered inserts (1-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Trigger {
    /// Fire once, on exactly the `n`-th insert.
    At(u64),
    /// Fire on every `n`-th insert (n, 2n, 3n, …).
    Every(u64),
}

/// A scripted list of faults for one backend instance.
///
/// Schedules are `Clone` so a shard factory can stamp the same script
/// into every rebuild — note this means a rebuilt shard re-arms its
/// one-shot faults from zero.
#[derive(Debug, Clone, Default)]
pub struct FaultSchedule {
    faults: Vec<(Trigger, FaultKind)>,
}

impl FaultSchedule {
    /// No faults: the wrapped backend behaves exactly like the inner
    /// one (used for the healthy shards of a chaos run).
    pub fn none() -> Self {
        FaultSchedule::default()
    }

    /// Panic once, on the `n`-th offered insert (1-based).
    pub fn panic_at(n: u64) -> Self {
        FaultSchedule {
            faults: vec![(Trigger::At(n.max(1)), FaultKind::Panic)],
        }
    }

    /// Trip the simulated input-validation assert once, on the `n`-th
    /// offered insert (1-based).
    pub fn bad_value_at(n: u64) -> Self {
        FaultSchedule {
            faults: vec![(Trigger::At(n.max(1)), FaultKind::BadValue)],
        }
    }

    /// Stall `millis` ms once, on the `n`-th offered insert (1-based).
    pub fn stall_at(n: u64, millis: u64) -> Self {
        FaultSchedule {
            faults: vec![(Trigger::At(n.max(1)), FaultKind::Stall { millis })],
        }
    }

    /// Stall `millis` ms on every `period`-th offered insert: a
    /// persistently slow shard.
    pub fn stall_every(period: u64, millis: u64) -> Self {
        FaultSchedule {
            faults: vec![(Trigger::Every(period.max(1)), FaultKind::Stall { millis })],
        }
    }

    /// Appends another schedule's faults to this one (builder-style).
    pub fn and(mut self, other: FaultSchedule) -> Self {
        self.faults.extend(other.faults);
        self
    }

    /// Whether any scheduled fault poisons the backend when it fires
    /// ([`FaultKind::Panic`] or [`FaultKind::BadValue`]; stalls only
    /// slow it down).
    pub fn is_poisonous(&self) -> bool {
        self.faults
            .iter()
            .any(|(_, k)| matches!(k, FaultKind::Panic | FaultKind::BadValue))
    }

    /// A pseudorandom schedule derived from `seed`: possibly empty,
    /// possibly a one-shot panic / bad value / stall somewhere in
    /// `1..=horizon`, possibly a periodic micro-stall (long period,
    /// sub-millisecond pauses — a slow shard, not a dead one).
    /// Identical seeds yield identical schedules — the chaos suite's
    /// source of reproducible variety.
    pub fn seeded(seed: u64, horizon: u64) -> Self {
        let horizon = horizon.max(1);
        let mut x = seed;
        let mut next = move || {
            // splitmix64: the same generator the proptest shim uses.
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        match next() % 5 {
            0 => FaultSchedule::none(),
            1 => FaultSchedule::panic_at(next() % horizon + 1),
            2 => FaultSchedule::bad_value_at(next() % horizon + 1),
            3 => FaultSchedule::stall_at(next() % horizon + 1, next() % 3),
            _ => FaultSchedule::stall_every(horizon / 2 + next() % horizon + 1, next() % 2),
        }
    }
}

/// A [`QMax`] backend that fails on schedule.
///
/// Wraps any inner backend and forwards every call, firing the
/// [`FaultSchedule`]'s faults at their scripted insert counts. Intended
/// for tests and the chaos CI job; it costs one counter increment and a
/// (usually empty) schedule scan per insert.
#[derive(Debug, Clone)]
pub struct FaultyBackend<B> {
    inner: B,
    schedule: FaultSchedule,
    /// One-shot faults already fired (parallel to `schedule.faults`).
    fired: Vec<bool>,
    /// Offered inserts so far.
    seen: u64,
}

impl<B> FaultyBackend<B> {
    /// Wraps `inner` with a fault script.
    pub fn new(inner: B, schedule: FaultSchedule) -> Self {
        let fired = vec![false; schedule.faults.len()];
        FaultyBackend {
            inner,
            schedule,
            fired,
            seen: 0,
        }
    }

    /// Read access to the wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// Offered inserts so far (the schedule's clock).
    pub fn offered(&self) -> u64 {
        self.seen
    }

    /// Fires every fault scheduled for insert number `n`.
    fn fire(&mut self, n: u64) {
        for (i, &(trigger, kind)) in self.schedule.faults.iter().enumerate() {
            let due = match trigger {
                Trigger::At(at) => !self.fired[i] && n == at,
                Trigger::Every(period) => n.is_multiple_of(period),
            };
            if !due {
                continue;
            }
            self.fired[i] = true;
            match kind {
                FaultKind::Panic => {
                    panic!("fault-injected: scripted panic at insert {n}")
                }
                FaultKind::BadValue => {
                    panic!("fault-injected: value out of range at insert {n}")
                }
                FaultKind::Stall { millis } => std::thread::sleep(Duration::from_millis(millis)),
            }
        }
    }
}

impl<I, V: Ord, B: QMax<I, V>> QMax<I, V> for FaultyBackend<B> {
    fn insert(&mut self, id: I, val: V) -> bool {
        self.seen += 1;
        self.fire(self.seen);
        self.inner.insert(id, val)
    }

    fn query(&mut self) -> Vec<(I, V)> {
        self.inner.query()
    }

    fn reset(&mut self) {
        self.inner.reset();
        self.seen = 0;
        self.fired.iter_mut().for_each(|f| *f = false);
    }

    fn q(&self) -> usize {
        self.inner.q()
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn threshold(&self) -> Option<V> {
        self.inner.threshold()
    }

    fn name(&self) -> &'static str {
        "faulty"
    }
}

impl<I, V: Ord, B: Checkpoint<I, V>> Checkpoint<I, V> for FaultyBackend<B> {
    fn snapshot(&self) -> BackendSnapshot<I, V> {
        self.inner.snapshot()
    }

    /// Restores the wrapped backend's logical state only. `seen` and
    /// `fired` keep advancing across a warm restore — a one-shot fault
    /// fires once per [`QMax::reset`] arming, not once per recovery, so
    /// a supervised shard that panics and warm-restores does not panic
    /// again on the very next insert.
    fn restore(&mut self, snap: &BackendSnapshot<I, V>) {
        self.inner.restore(snap);
    }
}

impl<I: Clone, V: Ord + Clone, B: QMax<I, V>> BatchInsert<I, V> for FaultyBackend<B> {
    fn insert_batch(&mut self, items: &[(I, V)]) -> usize {
        let mut admitted = 0;
        for (id, val) in items {
            if self.insert(id.clone(), val.clone()) {
                admitted += 1;
            }
        }
        admitted
    }
}

/// Live [`silence_fault_panics`] guards. The filtering hook only
/// swallows scripted panics while this is non-zero; at zero every
/// payload falls through to the previously installed hook.
static SILENCE_DEPTH: AtomicUsize = AtomicUsize::new(0);

/// Scope token returned by [`silence_fault_panics`]. While at least one
/// guard is alive, panic payloads containing `"fault-injected"` are
/// swallowed; dropping the last guard restores the previous hook's
/// behaviour for *all* panics.
#[derive(Debug)]
pub struct FaultSilenceGuard {
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for FaultSilenceGuard {
    fn drop(&mut self) {
        SILENCE_DEPTH.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Keeps fault-injected panics out of test output — *scoped*.
///
/// Panics caught by the driver still run the global panic hook, which
/// by default prints a backtrace banner per panic — noise when a chaos
/// run fires hundreds of *scripted* panics. This arms a filter that
/// swallows payloads containing `"fault-injected"` and forwards
/// everything else to the previously installed hook, so real failures
/// still print.
///
/// The filter is only active while the returned [`FaultSilenceGuard`]
/// (or another one) is alive: once every guard has dropped, the
/// previous hook's behaviour is fully restored, including for scripted
/// payloads. Earlier revisions installed the filter permanently, which
/// hid scripted-looking panics escaping from *later*, unrelated tests
/// in the same process.
#[must_use = "the panic filter is only active while the guard is alive"]
pub fn silence_fault_panics() -> FaultSilenceGuard {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if SILENCE_DEPTH.load(Ordering::SeqCst) > 0 {
                let message = info
                    .payload()
                    .downcast_ref::<&str>()
                    .copied()
                    .or_else(|| info.payload().downcast_ref::<String>().map(|s| s.as_str()));
                if let Some(m) = message {
                    if m.contains("fault-injected") {
                        return;
                    }
                }
            }
            previous(info);
        }));
    });
    SILENCE_DEPTH.fetch_add(1, Ordering::SeqCst);
    FaultSilenceGuard {
        _not_send: std::marker::PhantomData,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qmax_core::HeapQMax;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn clean_schedule_is_transparent() {
        let mut faulty = FaultyBackend::new(HeapQMax::new(3), FaultSchedule::none());
        let mut plain = HeapQMax::new(3);
        for i in 0..100u64 {
            assert_eq!(faulty.insert(i, i * 7 % 31), plain.insert(i, i * 7 % 31));
        }
        let mut a: Vec<u64> = faulty.query().into_iter().map(|(_, v)| v).collect();
        let mut b: Vec<u64> = plain.query().into_iter().map(|(_, v)| v).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        assert_eq!(faulty.offered(), 100);
    }

    #[test]
    fn panic_fires_at_the_scripted_insert_exactly_once() {
        let _silence = silence_fault_panics();
        let mut faulty = FaultyBackend::new(HeapQMax::new(3), FaultSchedule::panic_at(5));
        for i in 0..4u64 {
            faulty.insert(i, i);
        }
        let err = catch_unwind(AssertUnwindSafe(|| faulty.insert(4, 4)))
            .expect_err("insert 5 must panic");
        let msg = err.downcast_ref::<String>().expect("string payload");
        assert!(msg.contains("fault-injected"), "got {msg:?}");
        assert!(msg.contains("insert 5"), "got {msg:?}");
        // One-shot: the fault does not re-fire.
        assert!(catch_unwind(AssertUnwindSafe(|| faulty.insert(5, 5))).is_ok());
        // …until reset re-arms the script.
        faulty.reset();
        for i in 0..4u64 {
            faulty.insert(i, i);
        }
        assert!(catch_unwind(AssertUnwindSafe(|| faulty.insert(4, 4))).is_err());
    }

    #[test]
    fn seeded_schedules_are_reproducible() {
        for seed in 0..64u64 {
            let a = format!("{:?}", FaultSchedule::seeded(seed, 1000));
            let b = format!("{:?}", FaultSchedule::seeded(seed, 1000));
            assert_eq!(a, b);
        }
        // The generator actually produces variety.
        let distinct: std::collections::HashSet<String> = (0..64u64)
            .map(|seed| format!("{:?}", FaultSchedule::seeded(seed, 1000)))
            .collect();
        assert!(
            distinct.len() > 8,
            "only {} distinct schedules",
            distinct.len()
        );
    }

    #[test]
    fn stalls_do_not_poison() {
        assert!(!FaultSchedule::stall_every(10, 1).is_poisonous());
        assert!(FaultSchedule::panic_at(1).is_poisonous());
        assert!(FaultSchedule::bad_value_at(1).is_poisonous());
        assert!(!FaultSchedule::none().is_poisonous());
        let mut faulty = FaultyBackend::new(HeapQMax::new(2), FaultSchedule::stall_at(2, 0));
        for i in 0..10u64 {
            faulty.insert(i, i);
        }
        assert_eq!(faulty.len(), 2);
    }
}
