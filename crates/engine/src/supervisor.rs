//! Checkpointed shard supervision: warm recovery, stall watchdogs, and
//! lifecycle accounting for the threaded driver.
//!
//! [`ShardedQMax::run_threaded`](crate::ShardedQMax::run_threaded)
//! isolates a failing shard but recovers it **cold**: the quarantined
//! backend is rebuilt empty from the factory, discarding the shard's
//! entire slice of the heavy-hitter state, and a *stalled* shard is
//! never detected at all. [`ShardedQMax::run_supervised`] upgrades both
//! recovery paths:
//!
//! * **Checkpointing** — each worker snapshots its backend
//!   ([`qmax_core::Checkpoint`]) every
//!   [`DriverConfig::checkpoint_every`] drained items, at batch
//!   boundaries. A panicking shard warm-restores from its last
//!   checkpoint in place (the backend survives the unwind; `restore`
//!   fully overwrites whatever the panic left behind), so post-fault
//!   loss is bounded by one checkpoint interval plus the in-flight
//!   batch, instead of the whole shard.
//! * **Stall watchdog** — the heartbeat is the shard ring's
//!   consumption counter ([`crate::ring::Producer::consumed`], the
//!   number of batches the worker has popped), plus an explicit bump
//!   per recovery step; a supervisor thread sweeps every
//!   [`WatchdogConfig::poll_interval`] and declares a shard stalled
//!   when the counter has been silent for
//!   [`WatchdogConfig::deadline`] while batches are pending. A stalled
//!   shard is restarted with bounded retries and exponential backoff
//!   with deterministic jitter: a spare backend (pre-stamped from the
//!   factory) is warm-restored from the last checkpoint and takes over
//!   on a fresh ring, while the abandoned worker drains its leftover
//!   batches into the quarantine bucket when it eventually wakes.
//!   While a worker is stalled the producer keeps try-pushing against
//!   its full ring, so the shard's ring high-water
//!   ([`DriverReport::per_shard_ring_high_water`]) pins at capacity —
//!   the occupancy-level symptom of the stall — before failover swaps
//!   the ring out (high-water marks fold across worker generations).
//! * **Lifecycle log** — every transition
//!   (`Healthy → Suspect → Restarting(n) → Quarantined`, and the
//!   recovery back to `Healthy`) is recorded as a [`LifecycleEvent`]
//!   with a live coverage estimate, and returned as the
//!   [`ShardLifecycle`] on [`DriverReport::lifecycle`].
//!
//! # Accounting
//!
//! The PR 4 conservation law still holds per shard:
//! `items == drained + dropped + quarantined` (plus nothing else). With
//! checkpointing enabled, `drained` is *stricter* than in
//! `run_threaded`: items whose effect was lost with a failure — drained
//! after the last surviving checkpoint — are **reclassified** from
//! drained to quarantined at recovery time, so `per_shard_drained`
//! counts exactly the items represented in the final shard state, each
//! exactly once. [`DriverReport::per_shard_recovered`] counts the
//! candidate entries re-adopted from checkpoints by warm restores.
//!
//! # Bounds and caveats
//!
//! The watchdog cannot kill a thread: a stalled worker is *abandoned*,
//! not destroyed, and `run_supervised` still joins it before returning.
//! A worker stalled forever therefore wedges the run — the watchdog
//! bounds the *measurement outage* (a replacement takes over within
//! `deadline + backoff`), not the join. The fault harness only scripts
//! finite stalls.

use crate::driver::{
    drain_batch, panic_message, DriverConfig, DriverReport, OverloadPolicy, ShardFailure,
};
use crate::ring;
use crate::shard_key::ShardKey;
use crate::sharded::{ShardHealth, ShardedQMax};
use qmax_core::{BackendSnapshot, BatchInsert, Checkpoint};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;
use std::time::{Duration, Instant};

/// Stall-detection and restart policy for
/// [`ShardedQMax::run_supervised`].
///
/// Also supplies the restart budget and backoff schedule used by the
/// in-worker panic recovery path, so panic storms and stalls draw from
/// the same bounded per-shard budget.
#[derive(Debug, Clone, Copy)]
pub struct WatchdogConfig {
    /// Heartbeat silence (with batches pending) after which a shard is
    /// declared stalled and restarted. Half the deadline marks it
    /// [`ShardState::Suspect`] first.
    pub deadline: Duration,
    /// Supervisor sweep period; detection latency is at most
    /// `deadline + poll_interval`.
    pub poll_interval: Duration,
    /// Restarts (panic or stall) allowed per shard before permanent
    /// quarantine.
    pub max_restarts: u32,
    /// Backoff before restart attempt `n` is `backoff_base · 2ⁿ⁻¹`,
    /// scaled by the jitter factor.
    pub backoff_base: Duration,
    /// Jitter fraction: each backoff is multiplied by a deterministic
    /// pseudorandom factor in `[1, 1 + backoff_jitter]`, derived from
    /// `seed`, the shard index, and the attempt number.
    pub backoff_jitter: f64,
    /// Seed for the jitter generator — same seed, same backoff
    /// schedule, which is what keeps chaos runs reproducible.
    pub seed: u64,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            deadline: Duration::from_millis(200),
            poll_interval: Duration::from_millis(20),
            max_restarts: 3,
            backoff_base: Duration::from_millis(10),
            backoff_jitter: 0.5,
            seed: 0x9E37_79B9_7F4A_7C15,
        }
    }
}

/// A shard's position in the supervision state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardState {
    /// Draining batches normally (also the post-recovery state).
    Healthy,
    /// Heartbeat silent with batches pending for at least half the
    /// watchdog deadline; not yet restarted.
    Suspect,
    /// Being restarted (attempt `n`, 1-based): backoff, warm restore,
    /// and — for stalls — worker replacement are in progress.
    Restarting(u32),
    /// Restart budget exhausted; the shard is permanently out of the
    /// run. At run end its slot is still warm-rebuilt from the last
    /// checkpoint.
    Quarantined,
}

/// One supervision state transition, stamped with run-relative time and
/// a live coverage estimate.
#[derive(Debug, Clone)]
pub struct LifecycleEvent {
    /// Shard the transition applies to.
    pub shard: usize,
    /// The state entered.
    pub state: ShardState,
    /// Time since the run started.
    pub at: Duration,
    /// Restart attempts consumed by this shard so far (panics and
    /// stalls combined).
    pub restarts: u32,
    /// Live coverage at the transition: the fraction of all drained
    /// (conserved) items held by shards that were healthy at that
    /// instant. Dips below 1.0 while a shard is suspect, restarting, or
    /// quarantined with state on board; returns to 1.0 once a warm
    /// restore re-adopts the shard's checkpoint.
    pub coverage: f64,
    /// Human-readable cause (panic message, "stall deadline exceeded",
    /// …).
    pub detail: String,
}

/// The ordered transition log of a supervised run.
#[derive(Debug, Clone, Default)]
pub struct ShardLifecycle {
    events: Vec<LifecycleEvent>,
}

impl ShardLifecycle {
    pub(crate) fn from_events(mut events: Vec<LifecycleEvent>) -> Self {
        events.sort_by_key(|e| e.at);
        ShardLifecycle { events }
    }

    /// All transitions, ordered by time.
    pub fn events(&self) -> &[LifecycleEvent] {
        &self.events
    }

    /// Whether no transitions were recorded (a fully healthy run).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Restart attempts recorded for shard `s`.
    pub fn restarts(&self, s: usize) -> u32 {
        self.events
            .iter()
            .filter(|e| e.shard == s)
            .filter_map(|e| match e.state {
                ShardState::Restarting(n) => Some(n),
                _ => None,
            })
            .max()
            .unwrap_or(0)
    }

    /// The last state recorded for shard `s` ([`ShardState::Healthy`]
    /// if the shard never left it).
    pub fn final_state(&self, s: usize) -> ShardState {
        self.events
            .iter()
            .rev()
            .find(|e| e.shard == s)
            .map(|e| e.state)
            .unwrap_or(ShardState::Healthy)
    }

    /// The lowest live coverage observed across all transitions (1.0
    /// for a healthy run).
    pub fn min_coverage(&self) -> f64 {
        self.events
            .iter()
            .map(|e| e.coverage)
            .fold(1.0f64, f64::min)
    }
}

/// splitmix64 — the repo-standard deterministic mixer.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Deterministic exponential backoff with jitter: `base · 2ⁿ⁻¹ ·
/// jitter(seed, shard, n)`, capped at 5 s.
fn backoff_delay(wd: &WatchdogConfig, shard: usize, attempt: u32) -> Duration {
    let doubling = attempt.saturating_sub(1).min(16);
    let base = wd.backoff_base.saturating_mul(1u32 << doubling);
    let r = splitmix64(wd.seed ^ ((shard as u64) << 32) ^ attempt as u64);
    let unit = (r >> 11) as f64 / (1u64 << 53) as f64;
    let factor = 1.0 + wd.backoff_jitter.max(0.0) * unit;
    base.mul_f64(factor).min(Duration::from_secs(5))
}

/// Latest checkpoint for one shard, plus the cumulative counters at
/// snapshot time (needed to reclassify post-checkpoint progress as lost
/// on recovery).
struct CkptSlot<I, V> {
    snap: Option<BackendSnapshot<I, V>>,
    drained_at: u64,
    admitted_at: u64,
}

impl<I, V> CkptSlot<I, V> {
    fn new() -> Self {
        CkptSlot {
            snap: None,
            drained_at: 0,
            admitted_at: 0,
        }
    }
}

/// A shard's current batch ring producer, swappable on failover and
/// cleared on permanent quarantine or shutdown. Retiring a producer
/// (see [`SupShared::retire_producer`]) folds its ring high-water into
/// the shard's accumulator before the drop closes the ring.
type SenderSlot<I, V> = Mutex<Option<ring::Producer<Vec<(I, V)>>>>;

/// Everything the producer, workers, and supervisor share for one
/// supervised run. Stack-allocated outside the thread scope and
/// borrowed in.
struct SupShared<I, V, B> {
    /// Current sender per shard; `None` once the shard is permanently
    /// quarantined or the run is shutting down.
    slots: Vec<SenderSlot<I, V>>,
    /// Current worker generation per shard; a worker whose generation
    /// no longer matches counts everything it receives as quarantined.
    gens: Vec<AtomicU64>,
    /// Recovery-step heartbeat bumps (warm restores), never reset. The
    /// batch-level heartbeat is the current ring's consumption counter
    /// ([`ring::Producer::consumed`]); the watchdog sums the two.
    hearts: Vec<AtomicU64>,
    /// Peak ring occupancy per shard, folded across worker generations
    /// as producers are retired (failover, quarantine, shutdown).
    ring_hw: Vec<AtomicU64>,
    /// Batches handed to a worker but not yet fully processed.
    pending: Vec<AtomicI64>,
    /// Set while a worker is self-restoring after a panic, so the
    /// watchdog does not count backoff sleep as a stall.
    restoring: Vec<AtomicBool>,
    /// Whether the shard currently counts toward live coverage.
    healthy: Vec<AtomicBool>,
    drained: Vec<AtomicU64>,
    admitted: Vec<AtomicU64>,
    quarantined: Vec<AtomicU64>,
    /// Candidate entries re-adopted from checkpoints by warm restores.
    recovered: Vec<AtomicU64>,
    /// Restart attempts consumed (panics + stalls).
    restarts: Vec<AtomicU32>,
    ckpts: Vec<Mutex<CkptSlot<I, V>>>,
    events: Mutex<Vec<LifecycleEvent>>,
    fail_msgs: Vec<Mutex<Option<String>>>,
    /// Final backend of each shard's surviving generation.
    outcomes: Mutex<Vec<(usize, B)>>,
    live_workers: AtomicUsize,
    /// Set by the producer before it starts closing channels; the
    /// supervisor stops spawning replacements once it is up.
    closing: AtomicBool,
    start: Instant,
}

impl<I, V, B> SupShared<I, V, B> {
    fn new(n: usize) -> Self {
        SupShared {
            slots: (0..n).map(|_| Mutex::new(None)).collect(),
            gens: (0..n).map(|_| AtomicU64::new(0)).collect(),
            hearts: (0..n).map(|_| AtomicU64::new(0)).collect(),
            ring_hw: (0..n).map(|_| AtomicU64::new(0)).collect(),
            pending: (0..n).map(|_| AtomicI64::new(0)).collect(),
            restoring: (0..n).map(|_| AtomicBool::new(false)).collect(),
            healthy: (0..n).map(|_| AtomicBool::new(true)).collect(),
            drained: (0..n).map(|_| AtomicU64::new(0)).collect(),
            admitted: (0..n).map(|_| AtomicU64::new(0)).collect(),
            quarantined: (0..n).map(|_| AtomicU64::new(0)).collect(),
            recovered: (0..n).map(|_| AtomicU64::new(0)).collect(),
            restarts: (0..n).map(|_| AtomicU32::new(0)).collect(),
            ckpts: (0..n).map(|_| Mutex::new(CkptSlot::new())).collect(),
            events: Mutex::new(Vec::new()),
            fail_msgs: (0..n).map(|_| Mutex::new(None)).collect(),
            outcomes: Mutex::new(Vec::new()),
            live_workers: AtomicUsize::new(0),
            closing: AtomicBool::new(false),
            start: Instant::now(),
        }
    }

    /// Live coverage: fraction of all drained (conserved) items held by
    /// currently-healthy shards. 1.0 before anything drains.
    fn live_coverage(&self) -> f64 {
        let mut total = 0u64;
        let mut represented = 0u64;
        for s in 0..self.drained.len() {
            let d = self.drained[s].load(Ordering::SeqCst);
            total += d;
            if self.healthy[s].load(Ordering::SeqCst) {
                represented += d;
            }
        }
        if total == 0 {
            1.0
        } else {
            represented as f64 / total as f64
        }
    }

    fn push_event(&self, shard: usize, state: ShardState, detail: impl Into<String>) {
        let event = LifecycleEvent {
            shard,
            state,
            at: self.start.elapsed(),
            restarts: self.restarts[shard].load(Ordering::SeqCst),
            coverage: self.live_coverage(),
            detail: detail.into(),
        };
        self.events.lock().unwrap().push(event);
    }

    /// Rolls the shard's drained/admitted counters back to the last
    /// checkpoint, charging the difference to the quarantine bucket.
    /// Called with the generation already fenced (no live writer), so
    /// the plain store does not race a worker's increment.
    fn reclassify_to_checkpoint(&self, s: usize, slot: &CkptSlot<I, V>) {
        let lost = self.drained[s]
            .load(Ordering::SeqCst)
            .saturating_sub(slot.drained_at);
        self.drained[s].store(slot.drained_at, Ordering::SeqCst);
        self.admitted[s].store(slot.admitted_at, Ordering::SeqCst);
        self.quarantined[s].fetch_add(lost, Ordering::SeqCst);
    }

    /// Retires a shard's current ring producer: folds the ring's
    /// high-water occupancy into the cross-generation accumulator,
    /// then drops the handle (which closes the ring, ending — or
    /// eventually ending, for a stalled worker — its drain loop).
    fn retire_producer(&self, s: usize, guard: &mut Option<ring::Producer<Vec<(I, V)>>>) {
        if let Some(producer) = guard.take() {
            self.ring_hw[s].fetch_max(producer.high_water(), Ordering::SeqCst);
        }
    }
}

/// One supervised worker generation: drains batches, checkpoints on
/// cadence, and warm-restores itself in place after a caught panic
/// while restart budget remains.
#[allow(clippy::too_many_arguments)]
fn supervised_worker<I, V, B>(
    sh: &SupShared<I, V, B>,
    s: usize,
    my_gen: u64,
    backend: B,
    mut rx: ring::Consumer<Vec<(I, V)>>,
    ckpt_every: Option<u64>,
    wd: WatchdogConfig,
    pin_core: Option<usize>,
) where
    V: Ord,
    B: BatchInsert<I, V> + Checkpoint<I, V>,
{
    if let Some(core) = pin_core {
        ring::pin_current_thread(core);
    }
    let mut live = Some(backend);
    let mut since_ckpt = 0u64;
    while let Some(batch) = rx.recv() {
        let len = batch.len() as u64;
        let mine = sh.gens[s].load(Ordering::SeqCst) == my_gen;
        match (mine, live.take()) {
            (false, b) => {
                // Abandoned by a stall failover: the replacement owns
                // the shard now; this sub-stream remainder is lost.
                sh.quarantined[s].fetch_add(len, Ordering::SeqCst);
                drop(b);
            }
            (true, None) => {
                // Permanently quarantined earlier in this loop.
                sh.quarantined[s].fetch_add(len, Ordering::SeqCst);
            }
            (true, Some(mut b)) => {
                match catch_unwind(AssertUnwindSafe(|| drain_batch(&mut b, batch))) {
                    Ok(admitted) => {
                        if sh.gens[s].load(Ordering::SeqCst) != my_gen {
                            // Swapped out mid-batch; the effect is
                            // discarded with this backend.
                            sh.quarantined[s].fetch_add(len, Ordering::SeqCst);
                            drop(b);
                        } else {
                            sh.drained[s].fetch_add(len, Ordering::SeqCst);
                            sh.admitted[s].fetch_add(admitted, Ordering::SeqCst);
                            // No explicit heartbeat: popping the batch
                            // already advanced the ring's consumption
                            // counter, which is what the watchdog reads.
                            since_ckpt += len;
                            if let Some(k) = ckpt_every {
                                if since_ckpt >= k {
                                    let mut slot = sh.ckpts[s].lock().unwrap();
                                    slot.snap = Some(b.snapshot());
                                    slot.drained_at = sh.drained[s].load(Ordering::SeqCst);
                                    slot.admitted_at = sh.admitted[s].load(Ordering::SeqCst);
                                    since_ckpt = 0;
                                }
                            }
                            live = Some(b);
                        }
                    }
                    Err(payload) => {
                        let msg = panic_message(payload);
                        sh.quarantined[s].fetch_add(len, Ordering::SeqCst);
                        sh.healthy[s].store(false, Ordering::SeqCst);
                        let attempt = sh.restarts[s].fetch_add(1, Ordering::SeqCst) + 1;
                        if ckpt_every.is_some() && attempt <= wd.max_restarts {
                            sh.restoring[s].store(true, Ordering::SeqCst);
                            {
                                let slot = sh.ckpts[s].lock().unwrap();
                                sh.reclassify_to_checkpoint(s, &slot);
                            }
                            sh.push_event(s, ShardState::Restarting(attempt), msg);
                            thread::sleep(backoff_delay(&wd, s, attempt));
                            {
                                let slot = sh.ckpts[s].lock().unwrap();
                                match &slot.snap {
                                    Some(snap) => {
                                        b.restore(snap);
                                        sh.recovered[s]
                                            .fetch_add(snap.len() as u64, Ordering::SeqCst);
                                    }
                                    None => b.restore(&BackendSnapshot::empty()),
                                }
                            }
                            since_ckpt = 0;
                            sh.healthy[s].store(true, Ordering::SeqCst);
                            sh.restoring[s].store(false, Ordering::SeqCst);
                            sh.hearts[s].fetch_add(1, Ordering::SeqCst);
                            sh.push_event(s, ShardState::Healthy, "warm restore complete");
                            live = Some(b);
                        } else {
                            // Budget exhausted (or checkpointing off):
                            // permanent quarantine, PR 4 style. Fence
                            // the generation and retire the ring (the
                            // producer sees it close and orphans).
                            sh.gens[s].fetch_add(1, Ordering::SeqCst);
                            sh.retire_producer(s, &mut sh.slots[s].lock().unwrap());
                            if ckpt_every.is_some() {
                                let slot = sh.ckpts[s].lock().unwrap();
                                sh.reclassify_to_checkpoint(s, &slot);
                            }
                            *sh.fail_msgs[s].lock().unwrap() = Some(msg.clone());
                            sh.push_event(s, ShardState::Quarantined, msg);
                            drop(b);
                        }
                    }
                }
            }
        }
        sh.pending[s].fetch_sub(1, Ordering::SeqCst);
    }
    if let Some(b) = live {
        if sh.gens[s].load(Ordering::SeqCst) == my_gen {
            sh.outcomes.lock().unwrap().push((s, b));
        }
    }
    sh.live_workers.fetch_sub(1, Ordering::SeqCst);
}

impl<I, V, B> ShardedQMax<I, V, B>
where
    I: ShardKey + Send,
    V: Ord + Clone + Send,
    B: BatchInsert<I, V> + Checkpoint<I, V> + Send,
{
    /// [`ShardedQMax::run_threaded`] with supervision: checkpointed
    /// warm recovery for panicking shards, a stall watchdog with
    /// bounded-backoff worker replacement, and a full
    /// [`ShardLifecycle`] transition log on the report.
    ///
    /// * With [`DriverConfig::checkpoint_every`] set, each worker
    ///   snapshots its backend on that drained-item cadence (at batch
    ///   boundaries) and a panicking shard warm-restores from the last
    ///   checkpoint in place, losing at most one checkpoint interval
    ///   plus the in-flight batch. Without it, panics follow the PR 4
    ///   cold-quarantine path.
    /// * With [`DriverConfig::watchdog`] set, a supervisor thread
    ///   replaces stalled workers (heartbeat silent past the deadline
    ///   with batches pending) from pre-stamped spare backends, warm
    ///   restored from the last checkpoint, after exponential backoff
    ///   with deterministic jitter.
    /// * Either way, a shard that exhausts
    ///   [`WatchdogConfig::max_restarts`] is permanently quarantined;
    ///   its slot is still warm-rebuilt from its last checkpoint after
    ///   the run (cold only if no checkpoint was ever taken).
    ///
    /// After the run, [`ShardedQMax::query_with_coverage`] annotates
    /// merged queries with the surviving coverage fraction.
    pub fn run_supervised<S>(&mut self, stream: S, config: DriverConfig) -> DriverReport
    where
        S: Iterator<Item = (I, V)>,
    {
        let n = self.shard_count();
        let batch_size = config.batch_size.max(1);
        let queue_depth = config.queue_depth.max(1);
        let ckpt_every = config.checkpoint_every;
        let wd = config.watchdog.unwrap_or_default();
        let watchdog_on = config.watchdog.is_some();
        let pin_threads = config.pin_threads;
        let shards = self.take_shards();
        let router = self.router();
        // Spares for stall failover are stamped out of the factory up
        // front: the factory borrows `self` mutably and cannot be
        // called once the backends are inside the scope.
        let spares: Mutex<Vec<Vec<B>>> = Mutex::new(if watchdog_on {
            (0..n)
                .map(|s| (0..wd.max_restarts).map(|_| self.fresh_shard(s)).collect())
                .collect()
        } else {
            (0..n).map(|_| Vec::new()).collect()
        });
        let sh: SupShared<I, V, B> = SupShared::new(n);
        let done = AtomicBool::new(false);
        let mut per_shard_items = vec![0u64; n];
        let mut per_shard_dropped = vec![0u64; n];
        let mut orphaned = vec![0u64; n];
        let start = Instant::now();
        thread::scope(|scope| {
            let sh = &sh;
            let spares = &spares;
            let done = &done;
            for (s, backend) in shards.into_iter().enumerate() {
                let (tx, rx) = ring::ring::<Vec<(I, V)>>(queue_depth);
                *sh.slots[s].lock().unwrap() = Some(tx);
                sh.live_workers.fetch_add(1, Ordering::SeqCst);
                let pin = crate::driver::pin_plan(config.pin_threads, s);
                scope.spawn(move || supervised_worker(sh, s, 0, backend, rx, ckpt_every, wd, pin));
            }
            if watchdog_on {
                scope.spawn(move || {
                    let mut last_heart = vec![0u64; n];
                    let mut last_change = vec![Instant::now(); n];
                    let mut suspect = vec![false; n];
                    while !done.load(Ordering::SeqCst) {
                        thread::sleep(wd.poll_interval);
                        let now = Instant::now();
                        for s in 0..n {
                            if sh.closing.load(Ordering::SeqCst) {
                                break;
                            }
                            // The batch-level heartbeat is the live
                            // ring's consumption counter; recovery
                            // steps add explicit bumps on top.
                            let consumed = {
                                let guard = sh.slots[s].lock().unwrap();
                                match guard.as_ref() {
                                    None => continue, // permanently quarantined
                                    Some(producer) => producer.consumed(),
                                }
                            };
                            let h = consumed + sh.hearts[s].load(Ordering::SeqCst);
                            if h != last_heart[s] || sh.restoring[s].load(Ordering::SeqCst) {
                                last_heart[s] = h;
                                last_change[s] = now;
                                if suspect[s] {
                                    suspect[s] = false;
                                    sh.healthy[s].store(true, Ordering::SeqCst);
                                    sh.push_event(s, ShardState::Healthy, "heartbeat resumed");
                                }
                                continue;
                            }
                            if sh.pending[s].load(Ordering::SeqCst) <= 0 {
                                // Idle, not stalled: nothing to drain.
                                last_change[s] = now;
                                continue;
                            }
                            let silent = now.duration_since(last_change[s]);
                            if !suspect[s] && silent >= wd.deadline / 2 {
                                suspect[s] = true;
                                sh.healthy[s].store(false, Ordering::SeqCst);
                                sh.push_event(
                                    s,
                                    ShardState::Suspect,
                                    "heartbeat silent with batches pending",
                                );
                            }
                            if silent < wd.deadline {
                                continue;
                            }
                            // Stall confirmed.
                            let attempt = sh.restarts[s].fetch_add(1, Ordering::SeqCst) + 1;
                            if attempt > wd.max_restarts {
                                sh.gens[s].fetch_add(1, Ordering::SeqCst);
                                sh.retire_producer(s, &mut sh.slots[s].lock().unwrap());
                                {
                                    let slot = sh.ckpts[s].lock().unwrap();
                                    sh.reclassify_to_checkpoint(s, &slot);
                                }
                                *sh.fail_msgs[s].lock().unwrap() = Some(format!(
                                    "stalled worker exceeded restart budget ({})",
                                    wd.max_restarts
                                ));
                                sh.push_event(
                                    s,
                                    ShardState::Quarantined,
                                    "stall restart budget exhausted",
                                );
                                suspect[s] = false;
                                continue;
                            }
                            sh.push_event(
                                s,
                                ShardState::Restarting(attempt),
                                "stall deadline exceeded",
                            );
                            thread::sleep(backoff_delay(&wd, s, attempt));
                            let spare = spares.lock().unwrap()[s].pop();
                            let Some(mut spare) = spare else { continue };
                            // Fence the stalled generation first so it
                            // can no longer commit progress, then roll
                            // the counters back to the checkpoint the
                            // replacement resumes from.
                            let new_gen = sh.gens[s].fetch_add(1, Ordering::SeqCst) + 1;
                            {
                                let slot = sh.ckpts[s].lock().unwrap();
                                sh.reclassify_to_checkpoint(s, &slot);
                                if let Some(snap) = &slot.snap {
                                    spare.restore(snap);
                                    sh.recovered[s].fetch_add(snap.len() as u64, Ordering::SeqCst);
                                }
                            }
                            let (tx, rx) = ring::ring::<Vec<(I, V)>>(queue_depth);
                            {
                                let mut slot = sh.slots[s].lock().unwrap();
                                if sh.closing.load(Ordering::SeqCst) {
                                    // Shutdown raced the failover: the
                                    // stalled worker will drain its
                                    // leftovers into quarantine; do not
                                    // bring a replacement online.
                                    continue;
                                }
                                // Fold the stalled generation's ring
                                // high-water (pinned at capacity while
                                // the producer beat against it), then
                                // swap in the fresh ring.
                                sh.retire_producer(s, &mut slot);
                                *slot = Some(tx);
                            }
                            sh.live_workers.fetch_add(1, Ordering::SeqCst);
                            let pin = crate::driver::pin_plan(pin_threads, s);
                            scope.spawn(move || {
                                supervised_worker(sh, s, new_gen, spare, rx, ckpt_every, wd, pin)
                            });
                            sh.healthy[s].store(true, Ordering::SeqCst);
                            suspect[s] = false;
                            last_heart[s] = sh.hearts[s].load(Ordering::SeqCst);
                            last_change[s] = Instant::now();
                            sh.push_event(
                                s,
                                ShardState::Healthy,
                                "replacement worker online after warm restore",
                            );
                        }
                    }
                });
            }
            // Producer: route, batch, dispatch. Pushes never hold the
            // slot lock while waiting out a full ring, so the
            // supervisor can always swap a stalled shard's ring
            // underneath us. A full-ring `try_push` records the
            // at-capacity occupancy in the ring's high-water mark —
            // which is how a stall becomes visible as backpressure.
            let dispatch =
                |s: usize, batch: Vec<(I, V)>, dropped: &mut [u64], orphaned: &mut [u64]| {
                    let mut held = Some(batch);
                    loop {
                        {
                            let mut guard = sh.slots[s].lock().unwrap();
                            match guard.as_mut() {
                                None => {
                                    orphaned[s] += held.take().unwrap().len() as u64;
                                    return;
                                }
                                Some(tx) => {
                                    if tx.consumer_gone() {
                                        orphaned[s] += held.take().unwrap().len() as u64;
                                        return;
                                    }
                                    match tx.try_push(held.take().unwrap()) {
                                        Ok(()) => {
                                            sh.pending[s].fetch_add(1, Ordering::SeqCst);
                                            return;
                                        }
                                        Err(b) => held = Some(b), // ring full
                                    }
                                }
                            }
                        }
                        if let OverloadPolicy::Shed { max_dropped } = config.overload {
                            let len = held.as_ref().map(|b| b.len() as u64).unwrap_or(0);
                            if dropped[s] + len <= max_dropped {
                                dropped[s] += len;
                                return;
                            }
                        }
                        thread::sleep(Duration::from_micros(200));
                    }
                };
            let mut buffers: Vec<Vec<(I, V)>> =
                (0..n).map(|_| Vec::with_capacity(batch_size)).collect();
            for (id, val) in stream {
                let s = router.route(&id);
                per_shard_items[s] += 1;
                buffers[s].push((id, val));
                if buffers[s].len() >= batch_size {
                    let full = std::mem::replace(&mut buffers[s], Vec::with_capacity(batch_size));
                    dispatch(s, full, &mut per_shard_dropped, &mut orphaned);
                }
            }
            for (s, buffer) in buffers.into_iter().enumerate() {
                if !buffer.is_empty() {
                    dispatch(s, buffer, &mut per_shard_dropped, &mut orphaned);
                }
            }
            // Shutdown: fence the supervisor out of new failovers, then
            // retire every ring (folding its high-water and closing
            // it). Re-retiring in the wait loop catches a producer a
            // failover installed in the race window.
            sh.closing.store(true, Ordering::SeqCst);
            while {
                for s in 0..n {
                    sh.retire_producer(s, &mut sh.slots[s].lock().unwrap());
                }
                sh.live_workers.load(Ordering::SeqCst) > 0
            } {
                thread::sleep(Duration::from_millis(1));
            }
            done.store(true, Ordering::SeqCst);
        });
        let elapsed = start.elapsed();

        // Reassemble the engine: surviving generation backends slot
        // back in; permanently quarantined shards warm-rebuild from
        // their last checkpoint (cold only if none was ever taken).
        let mut finals: Vec<Option<B>> = (0..n).map(|_| None).collect();
        for (s, b) in sh.outcomes.into_inner().unwrap() {
            finals[s] = Some(b);
        }
        let per_shard_recovered: Vec<u64> = sh
            .recovered
            .iter()
            .map(|a| a.load(Ordering::SeqCst))
            .collect();
        let mut per_shard_recovered = per_shard_recovered;
        let restarts: Vec<u32> = sh
            .restarts
            .iter()
            .map(|a| a.load(Ordering::SeqCst))
            .collect();
        let per_shard_drained: Vec<u64> = sh
            .drained
            .iter()
            .map(|a| a.load(Ordering::SeqCst))
            .collect();
        let per_shard_admitted: Vec<u64> = sh
            .admitted
            .iter()
            .map(|a| a.load(Ordering::SeqCst))
            .collect();
        let mut per_shard_quarantined: Vec<u64> = sh
            .quarantined
            .iter()
            .map(|a| a.load(Ordering::SeqCst))
            .collect();
        let mut failures = Vec::new();
        let mut returned = Vec::with_capacity(n);
        let mut health = Vec::with_capacity(n);
        let ckpt_slots: Vec<CkptSlot<I, V>> = sh
            .ckpts
            .into_iter()
            .map(|m| m.into_inner().unwrap())
            .collect();
        let fail_msgs: Vec<Option<String>> = sh
            .fail_msgs
            .into_iter()
            .map(|m| m.into_inner().unwrap())
            .collect();
        for (s, slot) in ckpt_slots.into_iter().enumerate() {
            per_shard_quarantined[s] += orphaned[s];
            match finals[s].take() {
                Some(b) => {
                    returned.push(b);
                    health.push(if restarts[s] > 0 {
                        ShardHealth::Restored
                    } else {
                        ShardHealth::Healthy
                    });
                }
                None => {
                    let message = fail_msgs[s]
                        .clone()
                        .unwrap_or_else(|| "shard backend lost without a panic".to_string());
                    failures.push(ShardFailure {
                        shard: s,
                        message,
                        items_lost: per_shard_quarantined[s],
                    });
                    let mut fresh = self.fresh_shard(s);
                    match &slot.snap {
                        Some(snap) => {
                            fresh.restore(snap);
                            per_shard_recovered[s] += snap.len() as u64;
                            health.push(ShardHealth::Restored);
                        }
                        None => health.push(ShardHealth::Degraded),
                    }
                    returned.push(fresh);
                }
            }
        }
        self.restore_shards(returned);
        self.set_coverage(health, per_shard_drained.clone());
        let per_shard_backend = self.shard_backend_labels();
        let per_shard_ring_high_water: Vec<u64> = sh
            .ring_hw
            .iter()
            .map(|a| a.load(Ordering::SeqCst))
            .collect();
        DriverReport {
            items: per_shard_items.iter().sum(),
            elapsed,
            per_shard_items,
            per_shard_admitted,
            per_shard_drained,
            per_shard_dropped,
            per_shard_quarantined,
            per_shard_recovered,
            per_shard_ring_high_water,
            ring_capacity: queue_depth as u64,
            failures,
            per_shard_backend,
            lifecycle: ShardLifecycle::from_events(sh.events.into_inner().unwrap()),
        }
    }
}
