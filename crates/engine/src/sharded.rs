//! The sharded q-MAX reservoir.

use crate::shard_key::ShardKey;
use qmax_core::{
    AdaptiveBackend, AdaptiveBasicSlackQMax, BatchInsert, DeamortizedQMax, DeamortizedStats, Entry,
    ExpDecayQMax, OrderedF64, QMax, QMaxError, SoaAmortizedQMax, SoaBasicSlackQMax,
    SoaDeamortizedQMax,
};
use qmax_select::nth_smallest;
use qmax_traces::hash;
use std::marker::PhantomData;

/// Default seed mixed into shard hashing (any fixed constant works; it
/// only decorrelates shard assignment from other uses of the same key
/// hash, e.g. the RSS hash of the packet source).
const DEFAULT_SEED: u64 = 0x51AD_ED01;

/// A copyable id→shard mapping, usable while the shard backends are
/// temporarily moved into worker threads.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ShardRouter {
    seed: u64,
    shards: usize,
}

impl ShardRouter {
    /// The shard for an id: a seeded 64-bit mix of the id's key word,
    /// reduced by multiply-shift (unbiased for any shard count).
    #[inline]
    pub(crate) fn route<I: ShardKey>(&self, id: &I) -> usize {
        let h = hash::hash64(id.shard_hash(), self.seed);
        (((h as u128) * (self.shards as u128)) >> 64) as usize
    }
}

/// `S` hash-partitioned q-MAX shards answering global top-`q` queries.
///
/// Each shard is an independent [`QMax`] backend configured with the
/// *global* `q`: partitioning by id means a shard sees only a sub-stream,
/// and retaining the local top-`q` of every sub-stream is exactly what
/// makes the merged union a superset of the global top-`q` (at most
/// `q − 1` items beat a global top-`q` item anywhere, so in particular
/// within its own shard).
///
/// The structure itself implements [`QMax`], so it can stand wherever a
/// single-instance backend does — including the cross-backend agreement
/// tests, which assert its merged result equals [`qmax_core::HeapQMax`]'s
/// value-for-value.
///
/// Construction:
/// * [`ShardedQMax::new`] — `S` [`DeamortizedQMax`] shards (the paper's
///   worst-case-constant-time structure).
/// * [`ShardedQMax::with_backends`] — any homogeneous backend set built
///   by a closure, e.g. `AmortizedQMax` or `HeapQMax` shards.
#[derive(Debug)]
pub struct ShardedQMax<I, V, B = DeamortizedQMax<I, V>> {
    shards: Vec<B>,
    /// The backend factory the shards were built from, retained so a
    /// poisoned shard can be quarantined and rebuilt fresh (the
    /// `IntervalBackend::fresh` prototype pattern, lifted to the
    /// engine): the engine stays queryable with `S − k` populated
    /// reservoirs plus `k` empty replacements after `k` failures.
    factory: ShardFactory<B>,
    /// Configured shard count `S`; equals `shards.len()` except while a
    /// threaded run has temporarily moved the backends into workers.
    stated_shards: usize,
    q: usize,
    seed: u64,
    /// Items dropped by the batched pre-filter before reaching a shard.
    prefiltered: u64,
    /// Per-shard health as of the most recent threaded/supervised run
    /// (all [`ShardHealth::Healthy`] for a purely sequential engine).
    health: Vec<ShardHealth>,
    /// Per-shard conserved items: items drained into the shard whose
    /// effect the engine committed to represent, as of the most recent
    /// threaded/supervised run.
    conserved: Vec<u64>,
    _marker: ItemMarker<I, V>,
}

/// How much of a shard's conserved state the current backend actually
/// represents — the per-shard input to coverage annotation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardHealth {
    /// The backend holds everything the shard drained.
    Healthy,
    /// The backend was warm-restored from a checkpoint: it represents
    /// the shard's conserved items (post-checkpoint losses were
    /// reclassified as quarantined), but the shard did fail during the
    /// run.
    Restored,
    /// The backend was rebuilt cold (no checkpoint): the shard's
    /// conserved items are not represented until new arrivals
    /// repopulate it.
    Degraded,
}

/// A merged top-`q` query annotated with how much of the engine's
/// conserved state backs it. See [`ShardedQMax::query_with_coverage`].
#[derive(Debug, Clone)]
pub struct CoverageQuery<I, V> {
    /// The merged global top-`q` (same contents as [`QMax::query`]).
    pub items: Vec<(I, V)>,
    /// Fraction of conserved items (across all shards) represented by
    /// currently healthy or warm-restored shards. Exactly 1.0 when
    /// every shard is healthy or fully restored; dips below 1.0 while
    /// a cold-rebuilt shard's slice of the state is missing.
    pub coverage: f64,
    /// Shards whose results are not exact ([`ShardHealth::Restored`]
    /// or [`ShardHealth::Degraded`]), in shard order.
    pub degraded_shards: Vec<usize>,
}

/// The stored shard constructor (index → backend). Boxed so the engine
/// type stays independent of the concrete closure.
struct ShardFactory<B>(Box<dyn FnMut(usize) -> B + Send>);

impl<B> std::fmt::Debug for ShardFactory<B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ShardFactory(..)")
    }
}

/// Variance-neutral marker tying the engine to its item types without
/// owning them (a backend-generic engine stores only `B`s).
type ItemMarker<I, V> = PhantomData<fn(I, V) -> (I, V)>;

impl<I: Clone, V: Ord + Clone> ShardedQMax<I, V> {
    /// Creates `shards` de-amortized shards, each tracking the global
    /// top-`q` with space-slack `gamma`.
    ///
    /// # Panics
    ///
    /// Panics if `q == 0`, `shards == 0`, or `gamma` is not positive
    /// and finite. Use [`ShardedQMax::try_new`] at fallible API
    /// boundaries.
    pub fn new(q: usize, gamma: f64, shards: usize) -> Self {
        Self::try_new(q, gamma, shards).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`ShardedQMax::new`]: rejects `q == 0`, non-positive /
    /// non-finite `gamma`, and `shards == 0` instead of panicking — the
    /// constructor a service exposes to operator-supplied configuration.
    pub fn try_new(q: usize, gamma: f64, shards: usize) -> Result<Self, QMaxError> {
        if shards == 0 {
            return Err(QMaxError::ZeroShards);
        }
        // Validate (q, gamma) once up front so the error surfaces
        // before any shard is built.
        DeamortizedQMax::<I, V>::try_new(q, gamma)?;
        Ok(Self::with_backends(q, shards, move |_| {
            DeamortizedQMax::new(q, gamma)
        }))
    }

    /// Per-shard de-amortized execution counters, indexed by shard.
    pub fn shard_stats(&self) -> Vec<DeamortizedStats> {
        self.shards.iter().map(|s| s.stats()).collect()
    }

    /// Counters rolled up across shards: sums everywhere except
    /// `max_step_ops`, which is the maximum over shards — the quantity
    /// the worst-case `O(γ⁻¹)` bound constrains per arrival.
    pub fn aggregate_stats(&self) -> DeamortizedStats {
        let mut agg = DeamortizedStats::default();
        for s in self.shards.iter().map(|s| s.stats()) {
            agg.admitted += s.admitted;
            agg.filtered += s.filtered;
            agg.iterations += s.iterations;
            agg.forced_completions += s.forced_completions;
            agg.total_ops += s.total_ops;
            agg.max_step_ops = agg.max_step_ops.max(s.max_step_ops);
        }
        agg
    }
}

impl<I, V, B: QMax<I, V>> ShardedQMax<I, V, B> {
    /// Creates `shards` shards from `make_shard(shard_index)`.
    ///
    /// Every backend must be configured with the same global `q`
    /// (asserted), otherwise the merge-on-query superset argument
    /// breaks.
    ///
    /// # Panics
    ///
    /// Panics if `q == 0`, `shards == 0`, or a backend reports a
    /// different `q`.
    ///
    /// The factory is retained for the lifetime of the engine: it is
    /// what [`ShardedQMax::rebuild_shard`] (and the fault-tolerant
    /// driver's quarantine path) stamps replacement backends out of, so
    /// it must be callable again with any shard index.
    pub fn with_backends<F: FnMut(usize) -> B + Send + 'static>(
        q: usize,
        shards: usize,
        mut make_shard: F,
    ) -> Self {
        assert!(q > 0, "q must be positive");
        assert!(shards > 0, "need at least one shard");
        let built: Vec<B> = (0..shards).map(&mut make_shard).collect();
        for (i, s) in built.iter().enumerate() {
            assert_eq!(
                s.q(),
                q,
                "shard {i} configured with q={}, engine q={q}",
                s.q()
            );
        }
        let stated_shards = built.len();
        ShardedQMax {
            shards: built,
            factory: ShardFactory(Box::new(make_shard)),
            stated_shards,
            q,
            seed: DEFAULT_SEED,
            prefiltered: 0,
            health: vec![ShardHealth::Healthy; stated_shards],
            conserved: vec![0; stated_shards],
            _marker: PhantomData,
        }
    }

    /// Quarantines shard `s`: replaces its backend with a fresh, empty
    /// one stamped out of the stored factory and returns the displaced
    /// backend (drop it to discard the poisoned state).
    ///
    /// The other `S − 1` shards are untouched, so the engine remains
    /// queryable throughout — a merged query simply loses shard `s`'s
    /// contribution until new arrivals repopulate it, mirroring the
    /// paper's per-PMD independence (one PMD's instance restarting
    /// never stalls the others).
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range or the factory produces a backend
    /// with a mismatched `q` (the same invariant construction checks).
    pub fn rebuild_shard(&mut self, s: usize) -> B {
        let fresh = self.fresh_shard(s);
        if self.conserved[s] > 0 || !self.shards[s].is_empty() {
            self.health[s] = ShardHealth::Degraded;
        }
        std::mem::replace(&mut self.shards[s], fresh)
    }

    /// Warm variant of [`rebuild_shard`](Self::rebuild_shard): replaces
    /// shard `s`'s backend with a fresh one but salvages the displaced
    /// backend's local top-`q` into it first, returning the number of
    /// candidates carried over.
    ///
    /// This is the survival move when a shard's *structure* is suspect
    /// but its candidate set is still trusted (or was validated out of
    /// band): the rebuilt shard re-adopts exactly the candidates that
    /// determine every future top-`q` answer, so a merged query over the
    /// full history stays exact — any global top-`q` item from before
    /// the rebuild is, by definition, in its shard's local top-`q` and
    /// survives the salvage. Only the sub-top-`q` slack candidates and
    /// the admission threshold Ψ are discarded, which merely re-widens
    /// admission (the safe direction: Ψ may only have been too low,
    /// never too high). The shard is marked [`ShardHealth::Restored`]
    /// rather than `Degraded`.
    ///
    /// Backends that implement [`qmax_core::Checkpoint`] get the
    /// stronger per-batch checkpointed recovery through
    /// [`run_supervised`](Self::run_supervised); this method is the
    /// fallback for backends that do not (e.g. the default
    /// de-amortized layout).
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range or the factory produces a backend
    /// with a mismatched `q`.
    pub fn rebuild_shard_warm(&mut self, s: usize) -> usize {
        let fresh = self.fresh_shard(s);
        let mut old = std::mem::replace(&mut self.shards[s], fresh);
        let salvaged = old.query();
        let carried = salvaged.len();
        for (id, v) in salvaged {
            self.shards[s].insert(id, v);
        }
        if carried > 0 {
            self.health[s] = ShardHealth::Restored;
        }
        carried
    }

    /// Stamps a fresh backend for shard `s` out of the stored factory
    /// without touching the current shard vector (the threaded driver
    /// uses this while the backends live outside `self` mid-run).
    pub(crate) fn fresh_shard(&mut self, s: usize) -> B {
        let fresh = (self.factory.0)(s);
        assert_eq!(
            fresh.q(),
            self.q,
            "rebuilt shard {s} configured with q={}, engine q={}",
            fresh.q(),
            self.q
        );
        fresh
    }

    /// Replaces the shard-assignment seed (rarely needed; distinct
    /// engines sharing ids partition identically unless reseeded).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Number of shards `S`.
    pub fn shard_count(&self) -> usize {
        self.stated_shards
    }

    /// Read access to the shard backends.
    pub fn shards(&self) -> &[B] {
        &self.shards
    }

    /// Each shard's [`QMax::backend_label`], indexed by shard —
    /// observability for the adaptive backend selection (which layout
    /// the policy actually chose per shard). Empty while a threaded run
    /// has the backends moved into workers.
    pub fn shard_backend_labels(&self) -> Vec<&'static str> {
        self.shards.iter().map(|s| s.backend_label()).collect()
    }

    /// Items dropped by the batched pre-filter (cheap compare against a
    /// cached Ψ) without touching a shard. Not counted in any shard's
    /// own `filtered` statistic.
    pub fn prefiltered(&self) -> u64 {
        self.prefiltered
    }

    /// Per-shard health as of the most recent threaded/supervised run.
    pub fn shard_health(&self) -> &[ShardHealth] {
        &self.health
    }

    /// Records the per-shard health and conserved-item counts of a
    /// finished driver run (the inputs to coverage annotation).
    pub(crate) fn set_coverage(&mut self, health: Vec<ShardHealth>, conserved: Vec<u64>) {
        debug_assert_eq!(health.len(), self.stated_shards);
        debug_assert_eq!(conserved.len(), self.stated_shards);
        self.health = health;
        self.conserved = conserved;
    }

    /// The merged top-`q` annotated with the fraction of conserved
    /// items represented by currently-healthy + warm-restored shards.
    ///
    /// Callers use this to distinguish an exact top-`q` (`coverage ==
    /// 1.0`, `degraded_shards` empty) from a partial one during or
    /// after an outage: a cold-rebuilt shard leaves its conserved items
    /// unrepresented (`coverage < 1.0`) until a warm restore — or new
    /// arrivals — bring the fraction back toward 1.0.
    pub fn query_with_coverage(&mut self) -> CoverageQuery<I, V>
    where
        I: ShardKey + Clone,
        V: Ord + Clone,
        B: QMax<I, V>,
    {
        let items = self.query();
        let total: u64 = self.conserved.iter().sum();
        let represented: u64 = self
            .conserved
            .iter()
            .zip(&self.health)
            .filter(|&(_, h)| !matches!(h, ShardHealth::Degraded))
            .map(|(&c, _)| c)
            .sum();
        let coverage = if total == 0 {
            1.0
        } else {
            represented as f64 / total as f64
        };
        let degraded_shards = self
            .health
            .iter()
            .enumerate()
            .filter(|&(_, h)| !matches!(h, ShardHealth::Healthy))
            .map(|(s, _)| s)
            .collect();
        CoverageQuery {
            items,
            coverage,
            degraded_shards,
        }
    }

    /// The shard an id routes to: a seeded 64-bit mix of the id's key
    /// word, reduced by multiply-shift (unbiased for any shard count).
    #[inline]
    pub fn shard_of(&self, id: &I) -> usize
    where
        I: ShardKey,
    {
        self.router().route(id)
    }

    /// The id→shard mapping as a standalone copyable value.
    pub(crate) fn router(&self) -> ShardRouter {
        ShardRouter {
            seed: self.seed,
            shards: self.shards.len().max(self.stated_shards),
        }
    }

    /// Moves the shard backends out (for worker threads); the engine is
    /// not queryable until [`Self::restore_shards`] puts them back.
    pub(crate) fn take_shards(&mut self) -> Vec<B> {
        std::mem::take(&mut self.shards)
    }

    /// Puts backends taken by [`Self::take_shards`] back in shard order.
    pub(crate) fn restore_shards(&mut self, shards: Vec<B>) {
        debug_assert_eq!(shards.len(), self.stated_shards);
        self.shards = shards;
    }

    /// Batched hot path: inserts a batch, pre-filtering against each
    /// shard's cached admission threshold Ψ before touching the shard.
    ///
    /// The Ψ load is hoisted out of the per-item loop: each shard's
    /// threshold is read **once per call**, and the routing loop only
    /// compares against that snapshot. Ψ can rise mid-batch (a shard
    /// compaction), but re-reading it per item buys nothing for
    /// correctness — the snapshot is a safe under-approximation (Ψ is
    /// monotone non-decreasing, so the pre-filter drops only items the
    /// shard itself would have filtered) and every shard re-checks its
    /// own exact, current Ψ inside [`BatchInsert::insert_batch`]. The
    /// next call picks up whatever the compactions raised.
    ///
    /// Survivors are routed into per-shard runs and handed to each
    /// backend as one contiguous batch, so a structure-of-arrays backend
    /// (see [`ShardedQMax::new_soa`]) can run its branchless filter over
    /// the whole run. Returns the number of admitted items.
    pub fn insert_batch(&mut self, items: &[(I, V)]) -> usize
    where
        I: ShardKey + Clone,
        V: Ord + Clone,
        B: BatchInsert<I, V>,
    {
        if self.shards.len() == 1 {
            // Single shard: routing and pre-filtering are pure overhead;
            // the backend's own admission filter sees the batch whole.
            return self.shards[0].insert_batch(items);
        }
        let router = self.router();
        let psi: Vec<Option<V>> = self.shards.iter().map(|s| s.threshold()).collect();
        let mut runs: Vec<Vec<(I, V)>> = (0..self.shards.len()).map(|_| Vec::new()).collect();
        for (id, val) in items {
            let s = router.route(id);
            if let Some(t) = &psi[s] {
                if val <= t {
                    self.prefiltered += 1;
                    continue;
                }
            }
            runs[s].push((id.clone(), val.clone()));
        }
        let mut admitted = 0usize;
        for (s, run) in runs.iter().enumerate() {
            if !run.is_empty() {
                admitted += self.shards[s].insert_batch(run);
            }
        }
        admitted
    }
}

impl<I: Copy + 'static, V: Ord + Copy + 'static> ShardedQMax<I, V, SoaDeamortizedQMax<I, V>> {
    /// Creates `shards` structure-of-arrays de-amortized shards
    /// ([`SoaDeamortizedQMax`]) tracking the global top-`q` with
    /// space-slack `gamma`.
    ///
    /// Behaviorally identical to [`ShardedQMax::new`]; the difference is
    /// the per-shard layout — split `vals`/`ids` lanes with a branchless
    /// batch admission filter and value-only selection kernels — which
    /// pays off for `Copy` primitive ids/values on the
    /// [`ShardedQMax::insert_batch`] path.
    ///
    /// # Panics
    ///
    /// Panics if `q == 0`, `shards == 0`, or `gamma` is not positive
    /// and finite.
    pub fn new_soa(q: usize, gamma: f64, shards: usize) -> Self {
        Self::with_backends(q, shards, move |_| SoaDeamortizedQMax::new(q, gamma))
    }

    /// Per-shard de-amortized execution counters, indexed by shard.
    pub fn shard_stats(&self) -> Vec<DeamortizedStats> {
        self.shards.iter().map(|s| s.stats()).collect()
    }

    /// Counters rolled up across shards: sums everywhere except
    /// `max_step_ops`, which is the maximum over shards.
    pub fn aggregate_stats(&self) -> DeamortizedStats {
        let mut agg = DeamortizedStats::default();
        for s in self.shards.iter().map(|s| s.stats()) {
            agg.admitted += s.admitted;
            agg.filtered += s.filtered;
            agg.iterations += s.iterations;
            agg.forced_completions += s.forced_completions;
            agg.total_ops += s.total_ops;
            agg.max_step_ops = agg.max_step_ops.max(s.max_step_ops);
        }
        agg
    }
}

impl<I: Copy + 'static, V: Ord + Copy + 'static> ShardedQMax<I, V, SoaAmortizedQMax<I, V>> {
    /// Creates `shards` structure-of-arrays amortized shards
    /// ([`SoaAmortizedQMax`]): the lazily-compacted variant with the
    /// same split-lane layout and branchless batch filter as
    /// [`ShardedQMax::new_soa`].
    ///
    /// # Panics
    ///
    /// Panics if `q == 0`, `shards == 0`, or `gamma` is not positive
    /// and finite.
    pub fn new_soa_amortized(q: usize, gamma: f64, shards: usize) -> Self {
        Self::with_backends(q, shards, move |_| SoaAmortizedQMax::new(q, gamma))
    }
}

impl<I: Copy + 'static, V: Ord + Copy + 'static> ShardedQMax<I, V, SoaBasicSlackQMax<I, V>> {
    /// Creates `shards` structure-of-arrays slack-window shards
    /// ([`SoaBasicSlackQMax`]): each shard tracks the top-`q` of its
    /// sub-stream over a count-based `(W/S, τ)`-slack window, so the
    /// merged query approximates the global top-`q` of the last `w`
    /// arrivals (hash partitioning spreads a window of `w` global
    /// arrivals across shards as ≈ `w/S` arrivals each; per-shard
    /// block boundaries therefore jitter by the partition's deviation
    /// from a perfect split, which concentrates tightly for `w ≫ S`).
    ///
    /// Window shards report no admission threshold (block boundaries
    /// count *arrivals*, so dropping items early would shift them);
    /// [`ShardedQMax::insert_batch`] detects that and routes every item
    /// through, still batching per-shard runs through the SoA kernel.
    ///
    /// # Panics
    ///
    /// Panics if `q == 0`, `shards == 0`, `gamma` is not positive and
    /// finite, `w == 0`, or `tau` is outside `(0, 1]`.
    pub fn new_windowed_soa(q: usize, gamma: f64, shards: usize, w: usize, tau: f64) -> Self {
        assert!(shards > 0, "need at least one shard");
        assert!(w > 0, "window must be positive");
        let per_shard_w = (w / shards).max(1);
        Self::with_backends(q, shards, move |_| {
            SoaBasicSlackQMax::new_soa(q, gamma, per_shard_w, tau)
        })
    }
}

impl<I: Copy + 'static, V: Ord + Copy + 'static> ShardedQMax<I, V, AdaptiveBasicSlackQMax<I, V>> {
    /// Creates `shards` slack-window shards whose per-block layout is
    /// chosen by the calibrated backend policy (see
    /// [`qmax_core::BackendPolicy`]): each shard's expected per-block
    /// fill `⌈(w/S)·τ⌉` decides between the array-of-structs and
    /// structure-of-arrays block, ending the small-τ collapse of the
    /// hand-picked SoA configuration while keeping its large-fill wins.
    ///
    /// This is the recommended windowed constructor;
    /// [`ShardedQMax::new_windowed_soa`] remains for pinning the layout
    /// by hand. Inspect the per-shard decisions with
    /// [`ShardedQMax::shard_backend_labels`].
    ///
    /// # Panics
    ///
    /// Panics if `q == 0`, `shards == 0`, `gamma` is not positive and
    /// finite, `w == 0`, or `tau` is outside `(0, 1]`.
    pub fn new_windowed(q: usize, gamma: f64, shards: usize, w: usize, tau: f64) -> Self {
        assert!(shards > 0, "need at least one shard");
        assert!(w > 0, "window must be positive");
        let per_shard_w = (w / shards).max(1);
        Self::with_backends(q, shards, move |_| {
            AdaptiveBasicSlackQMax::new_adaptive(q, gamma, per_shard_w, tau)
        })
    }
}

impl<I: Copy + 'static> ShardedQMax<I, OrderedF64, ExpDecayQMax<AdaptiveBackend<I, OrderedF64>>> {
    /// Creates `shards` exponential-decay shards whose reservoir layout
    /// is chosen by the calibrated backend policy. Decayed reservoirs
    /// score in [`OrderedF64`], a lane the SIMD kernels cannot
    /// vectorize, so the `auto` policy resolves these shards to the
    /// array-of-structs layout; `QMAX_BACKEND_POLICY=force-soa` still
    /// pins the split-lane layout for comparison runs.
    ///
    /// Semantics are identical to [`ShardedQMax::new_decayed_soa`]
    /// (per-shard decay `c^S`, no admission threshold).
    ///
    /// # Panics
    ///
    /// Panics if `q == 0`, `shards == 0`, `gamma` is not positive and
    /// finite, or `c` is outside `(0, 1]`.
    pub fn new_decayed(q: usize, gamma: f64, shards: usize, c: f64) -> Self {
        assert!(shards > 0, "need at least one shard");
        assert!(c > 0.0 && c <= 1.0, "decay parameter must be in (0, 1]");
        let c_shard = c.powf(shards as f64).max(f64::MIN_POSITIVE);
        Self::with_backends(q, shards, move |_| {
            ExpDecayQMax::new(AdaptiveBackend::new(q, gamma), c_shard)
        })
    }
}

impl<I: Copy + 'static> ShardedQMax<I, OrderedF64, ExpDecayQMax<SoaAmortizedQMax<I, OrderedF64>>> {
    /// Creates `shards` exponential-decay shards over structure-of-arrays
    /// reservoirs: each shard ages its sub-stream with per-shard decay
    /// `c^S`, so an item `k` *global* arrivals old has decayed by
    /// ≈ `c^k` (its shard saw ≈ `k/S` of those arrivals). The decay
    /// clock advances per shard-local arrival, so the equivalence is in
    /// expectation over the hash partition.
    ///
    /// Decayed shards report no admission threshold (an arriving item's
    /// stored score depends on its arrival time), disabling the
    /// engine's Ψ-prefilter; per-shard runs still flow through the SoA
    /// batch kernel with the log transform applied once per run.
    ///
    /// # Panics
    ///
    /// Panics if `q == 0`, `shards == 0`, `gamma` is not positive and
    /// finite, or `c` is outside `(0, 1]`.
    pub fn new_decayed_soa(q: usize, gamma: f64, shards: usize, c: f64) -> Self {
        assert!(shards > 0, "need at least one shard");
        assert!(c > 0.0 && c <= 1.0, "decay parameter must be in (0, 1]");
        let c_shard = c.powf(shards as f64).max(f64::MIN_POSITIVE);
        Self::with_backends(q, shards, move |_| {
            ExpDecayQMax::new(SoaAmortizedQMax::new(q, gamma), c_shard)
        })
    }
}

impl<I: ShardKey, V: Ord + Clone, B: QMax<I, V>> QMax<I, V> for ShardedQMax<I, V, B> {
    fn insert(&mut self, id: I, val: V) -> bool {
        let s = self.shard_of(&id);
        self.shards[s].insert(id, val)
    }

    fn query(&mut self) -> Vec<(I, V)> {
        let mut merged: Vec<Entry<I, V>> = Vec::with_capacity(self.shards.len() * self.q);
        for shard in &mut self.shards {
            merged.extend(
                shard
                    .query()
                    .into_iter()
                    .map(|(id, val)| Entry::new(id, val)),
            );
        }
        if merged.len() > self.q {
            // Global top-q from the S·q candidates: select so the q
            // largest occupy the suffix, then keep only that suffix.
            let cut = merged.len() - self.q;
            nth_smallest(&mut merged, cut);
            merged.drain(..cut);
        }
        merged.into_iter().map(|e| (e.id, e.val)).collect()
    }

    fn reset(&mut self) {
        for shard in &mut self.shards {
            shard.reset();
        }
        self.prefiltered = 0;
        self.health.fill(ShardHealth::Healthy);
        self.conserved.fill(0);
    }

    fn q(&self) -> usize {
        self.q
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// The global admission threshold: the *minimum* over shard
    /// thresholds. A value at or below it is at or below its own
    /// shard's Ψ, so it would be filtered wherever it routes; `None`
    /// until every shard has established a threshold.
    fn threshold(&self) -> Option<V> {
        let mut min: Option<V> = None;
        for shard in &self.shards {
            let t = shard.threshold()?;
            min = Some(match min {
                Some(m) if m <= t => m,
                _ => t,
            });
        }
        min
    }

    fn name(&self) -> &'static str {
        "qmax-sharded"
    }
}

impl<I: ShardKey + Clone, V: Ord + Clone, B: BatchInsert<I, V>> BatchInsert<I, V>
    for ShardedQMax<I, V, B>
{
    fn insert_batch(&mut self, items: &[(I, V)]) -> usize {
        ShardedQMax::insert_batch(self, items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qmax_core::HeapQMax;
    use qmax_traces::gen::random_u64_stream;

    fn top_q_reference(vals: &[u64], q: usize) -> Vec<u64> {
        let mut s = vals.to_vec();
        s.sort_unstable_by(|a, b| b.cmp(a));
        s.truncate(q);
        s.sort_unstable();
        s
    }

    fn sorted_vals(qm: &mut impl QMax<u64, u64>) -> Vec<u64> {
        let mut v: Vec<u64> = qm.query().into_iter().map(|(_, v)| v).collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn matches_reference_across_shard_counts() {
        let vals: Vec<u64> = random_u64_stream(40_000, 3).collect();
        for q in [1usize, 16, 500] {
            let expect = top_q_reference(&vals, q);
            for shards in [1usize, 2, 4, 8] {
                let mut engine: ShardedQMax<u64, u64> = ShardedQMax::new(q, 0.25, shards);
                for (i, &v) in vals.iter().enumerate() {
                    engine.insert(i as u64, v);
                }
                assert_eq!(sorted_vals(&mut engine), expect, "q={q} shards={shards}");
            }
        }
    }

    #[test]
    fn batch_insert_equals_singleton_inserts() {
        let vals: Vec<u64> = random_u64_stream(30_000, 5).collect();
        let items: Vec<(u64, u64)> = vals
            .iter()
            .enumerate()
            .map(|(i, &v)| (i as u64, v))
            .collect();
        let q = 64;
        let mut batched: ShardedQMax<u64, u64> = ShardedQMax::new(q, 0.5, 4);
        let mut single: ShardedQMax<u64, u64> = ShardedQMax::new(q, 0.5, 4);
        for chunk in items.chunks(777) {
            batched.insert_batch(chunk);
        }
        for (id, v) in &items {
            single.insert(*id, *v);
        }
        assert_eq!(sorted_vals(&mut batched), sorted_vals(&mut single));
        // The pre-filter must shed the bulk of a long random stream.
        assert!(
            batched.prefiltered() > items.len() as u64 / 2,
            "pre-filter inactive"
        );
    }

    #[test]
    fn pre_filter_never_loses_an_admissible_item() {
        // Ascending stream: every item beats the current threshold, so
        // nothing may be pre-filtered and the final top-q is exact.
        let q = 32;
        let items: Vec<(u64, u64)> = (0..20_000u64).map(|i| (i, i)).collect();
        let mut engine: ShardedQMax<u64, u64> = ShardedQMax::new(q, 0.25, 4);
        for chunk in items.chunks(512) {
            engine.insert_batch(chunk);
        }
        let expect: Vec<u64> = (20_000 - q as u64..20_000).collect();
        assert_eq!(sorted_vals(&mut engine), expect);
    }

    #[test]
    fn agrees_with_heap_backend_shards() {
        let vals: Vec<u64> = random_u64_stream(25_000, 9).collect();
        let q = 100;
        let mut engine: ShardedQMax<u64, u64, HeapQMax<u64, u64>> =
            ShardedQMax::with_backends(q, 3, move |_| HeapQMax::new(q));
        for (i, &v) in vals.iter().enumerate() {
            engine.insert(i as u64, v);
        }
        assert_eq!(sorted_vals(&mut engine), top_q_reference(&vals, q));
    }

    #[test]
    fn shard_routing_is_stable_and_total() {
        let engine: ShardedQMax<u64, u64> = ShardedQMax::new(8, 0.5, 5);
        for id in 0..10_000u64 {
            let s = engine.shard_of(&id);
            assert!(s < 5);
            assert_eq!(s, engine.shard_of(&id), "routing not deterministic");
        }
    }

    #[test]
    fn shards_see_disjoint_balanced_slices() {
        let mut engine: ShardedQMax<u64, u64> = ShardedQMax::new(4, 0.5, 4);
        let n = 40_000u64;
        for id in 0..n {
            engine.insert(id, hash::mix64(id));
        }
        let stats = engine.shard_stats();
        let total: u64 = stats.iter().map(|s| s.admitted + s.filtered).sum();
        assert_eq!(total, n, "arrival accounting leak across shards");
        for (i, s) in stats.iter().enumerate() {
            let seen = s.admitted + s.filtered;
            assert!(
                seen > n / 8 && seen < n / 2,
                "shard {i} saw {seen} of {n}: partition badly unbalanced"
            );
        }
    }

    #[test]
    fn threshold_is_min_over_shards() {
        let mut engine: ShardedQMax<u64, u64> = ShardedQMax::new(4, 0.25, 3);
        assert_eq!(engine.threshold(), None);
        for id in 0..50_000u64 {
            engine.insert(id, hash::mix64(id) % 100_000);
        }
        let global = engine.threshold().expect("threshold after 50k inserts");
        let per_shard: Vec<u64> = engine
            .shards()
            .iter()
            .map(|s| s.threshold().expect("shard threshold"))
            .collect();
        assert_eq!(global, per_shard.iter().copied().min().unwrap());
        // Safety: a value at the global threshold is never admitted.
        assert!(!engine.insert(u64::MAX, global));
    }

    #[test]
    fn reset_clears_every_shard() {
        let mut engine: ShardedQMax<u64, u64> = ShardedQMax::new(4, 0.5, 4);
        for id in 0..5_000u64 {
            engine.insert(id, id);
        }
        engine.reset();
        assert!(engine.is_empty());
        assert_eq!(engine.threshold(), None);
        assert_eq!(engine.prefiltered(), 0);
        for id in 0..100u64 {
            engine.insert(id, id);
        }
        assert_eq!(engine.query().len(), 4);
    }

    #[test]
    fn single_shard_degenerates_to_backend() {
        let vals: Vec<u64> = random_u64_stream(10_000, 11).collect();
        let q = 50;
        let mut engine: ShardedQMax<u64, u64> = ShardedQMax::new(q, 0.3, 1);
        let mut plain = DeamortizedQMax::new(q, 0.3);
        for (i, &v) in vals.iter().enumerate() {
            engine.insert(i as u64, v);
            plain.insert(i as u64, v);
        }
        let mut a = sorted_vals(&mut engine);
        let mut b: Vec<u64> = plain.query().into_iter().map(|(_, v)| v).collect();
        b.sort_unstable();
        a.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "shard 0 configured with q=3")]
    fn mismatched_shard_q_is_rejected() {
        let _: ShardedQMax<u64, u64, HeapQMax<u64, u64>> =
            ShardedQMax::with_backends(5, 2, |_| HeapQMax::new(3));
    }

    #[test]
    fn soa_backend_matches_aos_backend() {
        let vals: Vec<u64> = random_u64_stream(30_000, 13).collect();
        let items: Vec<(u64, u64)> = vals
            .iter()
            .enumerate()
            .map(|(i, &v)| (i as u64, v))
            .collect();
        for q in [1usize, 64, 300] {
            for shards in [1usize, 4] {
                let mut aos: ShardedQMax<u64, u64> = ShardedQMax::new(q, 0.5, shards);
                let mut soa = ShardedQMax::new_soa(q, 0.5, shards);
                for chunk in items.chunks(1024) {
                    aos.insert_batch(chunk);
                    soa.insert_batch(chunk);
                }
                assert_eq!(
                    sorted_vals(&mut aos),
                    sorted_vals(&mut soa),
                    "q={q} shards={shards}"
                );
            }
        }
    }

    #[test]
    fn soa_amortized_backend_matches_reference() {
        let vals: Vec<u64> = random_u64_stream(25_000, 17).collect();
        let items: Vec<(u64, u64)> = vals
            .iter()
            .enumerate()
            .map(|(i, &v)| (i as u64, v))
            .collect();
        let q = 128;
        let mut engine = ShardedQMax::new_soa_amortized(q, 0.5, 4);
        for chunk in items.chunks(777) {
            engine.insert_batch(chunk);
        }
        assert_eq!(sorted_vals(&mut engine), top_q_reference(&vals, q));
    }

    #[test]
    fn soa_shard_stats_roll_up() {
        let mut engine = ShardedQMax::new_soa(16, 0.5, 4);
        let items: Vec<(u64, u64)> = (0..40_000u64).map(|i| (i, hash::mix64(i))).collect();
        for chunk in items.chunks(512) {
            engine.insert_batch(chunk);
        }
        let agg = engine.aggregate_stats();
        assert_eq!(agg.forced_completions, 0);
        // Every item was either pre-filtered by the engine or accounted
        // for by exactly one shard.
        assert_eq!(
            agg.admitted + agg.filtered + engine.prefiltered(),
            items.len() as u64
        );
        assert_eq!(engine.shard_stats().len(), 4);
    }

    #[test]
    fn windowed_shards_expire_old_items_and_track_recent_top() {
        let q = 8;
        let w = 10_000;
        let mut engine = ShardedQMax::new_windowed_soa(q, 0.5, 4, w, 0.25);
        // An early burst of huge values, then several windows of
        // moderate ones: the burst must age out of every shard.
        let huge: Vec<(u64, u64)> = (0..100u64).map(|i| (i, 1_000_000_000 + i)).collect();
        engine.insert_batch(&huge);
        let recent: Vec<(u64, u64)> = (0..(4 * w) as u64)
            .map(|i| (100 + i, 1_000 + hash::mix64(i) % 100_000))
            .collect();
        for chunk in recent.chunks(1024) {
            engine.insert_batch(chunk);
        }
        let got: Vec<u64> = engine.query().into_iter().map(|(_, v)| v).collect();
        assert_eq!(got.len(), q);
        assert!(
            got.iter().all(|&v| v < 1_000_000_000),
            "expired burst leaked through a shard window: {got:?}"
        );
        // Window shards must disable the Ψ-prefilter entirely.
        assert_eq!(engine.threshold(), None);
        assert_eq!(engine.prefiltered(), 0);
    }

    #[test]
    fn decayed_shards_prefer_recent_items() {
        use qmax_core::OrderedF64;
        let q = 8;
        let mut engine = ShardedQMax::new_decayed_soa(q, 0.5, 4, 0.9);
        // One huge early item, then a long run of small ones: decay
        // must sink the early item below the recent tail.
        engine.insert_batch(&[(0u64, OrderedF64(1e9))]);
        let tail: Vec<(u64, OrderedF64)> = (1..5_000u64).map(|i| (i, OrderedF64(2.0))).collect();
        for chunk in tail.chunks(512) {
            engine.insert_batch(chunk);
        }
        let ids: Vec<u64> = engine.query().into_iter().map(|(id, _)| id).collect();
        assert_eq!(ids.len(), q);
        assert!(!ids.contains(&0), "decayed item survived: {ids:?}");
        assert_eq!(engine.threshold(), None);
        assert_eq!(engine.prefiltered(), 0);
    }

    #[test]
    fn adaptive_windowed_shards_match_soa_windowed_shards() {
        // The adaptive constructor must answer the same windowed
        // queries as the hand-picked SoA configuration — the policy
        // only moves the layout, never the semantics.
        let q = 8;
        let w = 10_000;
        let items: Vec<(u64, u64)> = (0..(4 * w) as u64)
            .map(|i| (i, 1_000 + hash::mix64(i) % 100_000))
            .collect();
        let mut ada = ShardedQMax::new_windowed(q, 0.5, 4, w, 0.25);
        let mut soa = ShardedQMax::new_windowed_soa(q, 0.5, 4, w, 0.25);
        for chunk in items.chunks(1024) {
            ada.insert_batch(chunk);
            soa.insert_batch(chunk);
        }
        assert_eq!(sorted_vals(&mut ada), sorted_vals(&mut soa));
        // Per-shard labels surface the decision the policy made.
        let labels = ada.shard_backend_labels();
        assert_eq!(labels.len(), 4);
        for l in labels {
            assert!(l.starts_with("qmax-adaptive"), "unexpected label {l}");
        }
    }

    #[test]
    fn adaptive_decayed_shards_match_soa_decayed_shards() {
        use qmax_core::OrderedF64;
        let q = 8;
        let items: Vec<(u64, OrderedF64)> = (0..20_000u64)
            .map(|i| (i, OrderedF64(1.0 + (hash::mix64(i) % 1_000) as f64)))
            .collect();
        let mut ada = ShardedQMax::new_decayed(q, 0.5, 4, 0.999);
        let mut soa = ShardedQMax::new_decayed_soa(q, 0.5, 4, 0.999);
        for chunk in items.chunks(512) {
            ada.insert_batch(chunk);
            soa.insert_batch(chunk);
        }
        let ids = |v: Vec<(u64, OrderedF64)>| {
            let mut ids: Vec<u64> = v.into_iter().map(|(id, _)| id).collect();
            ids.sort_unstable();
            ids
        };
        assert_eq!(ids(ada.query()), ids(soa.query()));
        // The score lane is OrderedF64, which SIMD cannot vectorize, so
        // the auto policy must resolve decayed shards to AoS.
        if std::env::var("QMAX_BACKEND_POLICY").is_err() {
            for l in ada.shard_backend_labels() {
                assert_eq!(l, "qmax-adaptive-aos");
            }
        }
    }

    #[test]
    fn batch_prefilter_stays_active_with_hoisted_psi() {
        // A long skewed-ish stream must still be shed mostly by the
        // per-call Ψ snapshot even though it is no longer refreshed per
        // admitted item.
        let vals: Vec<u64> = random_u64_stream(30_000, 5).collect();
        let items: Vec<(u64, u64)> = vals
            .iter()
            .enumerate()
            .map(|(i, &v)| (i as u64, v))
            .collect();
        let mut engine: ShardedQMax<u64, u64> = ShardedQMax::new(64, 0.5, 4);
        for chunk in items.chunks(777) {
            engine.insert_batch(chunk);
        }
        assert!(
            engine.prefiltered() > items.len() as u64 / 2,
            "pre-filter inactive: {} of {}",
            engine.prefiltered(),
            items.len()
        );
    }
}
