//! Workspace umbrella crate for the q-MAX reproduction.
//!
//! This crate exists to host the workspace-level examples (`examples/`) and
//! cross-crate integration tests (`tests/`). It re-exports the public crates
//! so examples can use a single dependency root.

pub use qmax_apps as apps;
pub use qmax_core as core;
pub use qmax_lrfu as lrfu;
pub use qmax_ovs_sim as ovs_sim;
pub use qmax_select as select;
pub use qmax_traces as traces;
